//! Lexer shared by the query dialect and the TASK DSL.

use crate::error::{QurkError, Result};

/// Kinds of lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are matched case-insensitively
    /// by the parser).
    Ident(String),
    /// Double-quoted string literal (supports `\"`, `\\`, `\n`, and a
    /// trailing `\` line continuation as in the paper's listings).
    Str(String),
    /// Numeric literal.
    Number(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
    Star,
    Eq,
    Lt,
    Gt,
    Le,
    Ge,
    Ne,
    /// End of input.
    Eof,
}

/// A token with source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub column: usize,
}

/// The 1-based `line`-th line of `src`, for error snippets.
pub(crate) fn source_line(src: &[u8], line: usize) -> Option<String> {
    let text = std::str::from_utf8(src).ok()?;
    text.lines().nth(line.saturating_sub(1)).map(str::to_owned)
}

/// Hand-rolled lexer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    /// Tokenize the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn error(&self, message: impl Into<String>) -> QurkError {
        QurkError::Parse {
            message: message.into(),
            line: self.line,
            column: self.column,
            snippet: source_line(self.src, self.line),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // -- line comments
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                // # line comments
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia();
        let (line, column) = (self.line, self.column);
        let mk = |kind| Token { kind, line, column };
        let Some(c) = self.peek() else {
            return Ok(mk(TokenKind::Eof));
        };
        let simple = |this: &mut Self, kind| {
            this.bump();
            Ok(mk(kind))
        };
        match c {
            b'(' => simple(self, TokenKind::LParen),
            b')' => simple(self, TokenKind::RParen),
            b'[' => simple(self, TokenKind::LBracket),
            b']' => simple(self, TokenKind::RBracket),
            b'{' => simple(self, TokenKind::LBrace),
            b'}' => simple(self, TokenKind::RBrace),
            b',' => simple(self, TokenKind::Comma),
            b':' => simple(self, TokenKind::Colon),
            b'.' => simple(self, TokenKind::Dot),
            b'*' => simple(self, TokenKind::Star),
            b'=' => simple(self, TokenKind::Eq),
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Ok(mk(TokenKind::Le))
                    }
                    Some(b'>') => {
                        self.bump();
                        Ok(mk(TokenKind::Ne))
                    }
                    _ => Ok(mk(TokenKind::Lt)),
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(mk(TokenKind::Ge))
                } else {
                    Ok(mk(TokenKind::Gt))
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(mk(TokenKind::Ne))
                } else {
                    Err(self.error("expected '=' after '!'"))
                }
            }
            b'"' => self.string().map(|s| mk(TokenKind::Str(s))),
            c if c.is_ascii_digit()
                || (c == b'-' && self.peek2().is_some_and(|d| d.is_ascii_digit())) =>
            {
                self.number().map(|n| mk(TokenKind::Number(n)))
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'%' => {
                let ident = self.ident();
                Ok(mk(TokenKind::Ident(ident)))
            }
            other => Err(self.error(format!("unexpected character {:?}", other as char))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    // The paper's listings use a trailing backslash as a
                    // line continuation inside Prompt strings.
                    Some(b'\n') => {}
                    Some(c) => {
                        out.push('\\');
                        out.push(c as char);
                    }
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => out.push(c as char),
            }
        }
    }

    fn number(&mut self) -> Result<f64> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map_err(|_| self.error(format!("bad number {text:?}")))
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'%')
        {
            self.bump();
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_owned()
    }
}

impl TokenKind {
    /// Case-insensitive keyword check for `Ident` tokens.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_query_shape() {
        let ks = kinds("SELECT c.name FROM celeb AS c WHERE isFemale(c)");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert!(ks.contains(&TokenKind::LParen));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn strings_with_escapes() {
        let ks = kinds(r#""a\"b" "x\\y" "n\nl""#);
        assert_eq!(ks[0], TokenKind::Str("a\"b".into()));
        assert_eq!(ks[1], TokenKind::Str("x\\y".into()));
        assert_eq!(ks[2], TokenKind::Str("n\nl".into()));
    }

    #[test]
    fn line_continuation_in_string() {
        let src = "\"<table>\\\n<tr>\"";
        assert_eq!(kinds(src)[0], TokenKind::Str("<table><tr>".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Number(42.0));
        assert_eq!(kinds("3.25")[0], TokenKind::Number(3.25));
        assert_eq!(kinds("-7")[0], TokenKind::Number(-7.0));
    }

    #[test]
    fn operators() {
        let ks = kinds("= < > <= >= != <>");
        assert_eq!(
            &ks[..7],
            &[
                TokenKind::Eq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Ne,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT -- hi\n# more\nname");
        assert_eq!(ks.len(), 3); // SELECT, name, EOF
    }

    #[test]
    fn percent_in_idents_for_format_specifiers() {
        // The DSL's prompt substitution marker %s survives as part of
        // strings; bare %s in templates is handled at template parse.
        let ks = kinds("%s");
        assert_eq!(ks[0], TokenKind::Ident("%s".into()));
    }

    #[test]
    fn positions_tracked() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }

    #[test]
    fn errors_on_stray_character() {
        assert!(Lexer::new("@").tokenize().is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let ks = kinds("select");
        assert!(ks[0].is_kw("SELECT"));
        assert!(!ks[0].is_kw("FROM"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The lexer never panics and always terminates with Eof on
        /// success.
        #[test]
        fn lexer_total(s in ".{0,300}") {
            if let Ok(tokens) = Lexer::new(&s).tokenize() {
                prop_assert_eq!(&tokens.last().unwrap().kind, &TokenKind::Eof);
            }
        }

        /// Lexing is insensitive to trailing whitespace.
        #[test]
        fn trailing_whitespace_irrelevant(s in "[a-zA-Z0-9 ,()=<>.]{0,80}") {
            let a = Lexer::new(&s).tokenize();
            let padded = format!("{s}  \n\t ");
            let b = Lexer::new(&padded).tokenize();
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    let kx: Vec<_> = x.into_iter().map(|t| t.kind).collect();
                    let ky: Vec<_> = y.into_iter().map(|t| t.kind).collect();
                    prop_assert_eq!(kx, ky);
                }
                (Err(_), Err(_)) => {}
                other => prop_assert!(false, "inconsistent: {other:?}"),
            }
        }
    }
}
