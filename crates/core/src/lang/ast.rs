//! Abstract syntax for queries and TASK definitions.

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<JoinClause>,
    /// WHERE clause in disjunctive normal form: the outer Vec is a
    /// disjunction (OR groups run in parallel per §2.5), each inner Vec
    /// a conjunction (ANDs run serially). Empty = no WHERE clause.
    pub where_groups: Vec<Vec<Predicate>>,
    pub order_by: Vec<OrderExpr>,
    pub limit: Option<usize>,
}

/// One SELECT list entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `c.name` or `name`
    Column(String),
    /// `animalInfo(img).common` — generative UDF field access, or a
    /// bare UDF call (single-field generative).
    Udf {
        call: UdfCall,
        field: Option<String>,
    },
}

/// `table [AS alias]`
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// Alias if present, else the table name.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// `JOIN t ON samePerson(a.img, b.img) AND POSSIBLY f(x) = f(y) ...`
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub right: TableRef,
    pub on: UdfCall,
    /// POSSIBLY feature-filter clauses: pairs of UDF calls that must
    /// agree (§2.4). Also admits `POSSIBLY f(x) > n` forms which the
    /// planner treats as feature predicates.
    pub possibly: Vec<PossiblyClause>,
}

/// One POSSIBLY clause.
#[derive(Debug, Clone, PartialEq)]
pub enum PossiblyClause {
    /// `POSSIBLY gender(a.img) = gender(b.img)`
    FeatureEq { left: UdfCall, right: UdfCall },
    /// `POSSIBLY numInScene(s.img) = "1"` — feature compared to a
    /// constant (the paper's end-to-end query prefilter).
    FeatureLit {
        call: UdfCall,
        op: CmpOp,
        value: Literal,
    },
}

/// WHERE predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Crowd UDF filter: `isFemale(c.img)`.
    Udf(UdfCall),
    /// Machine-evaluable comparison: `id < 100`.
    Compare { left: Expr, op: CmpOp, right: Expr },
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// Expressions usable in predicates and UDF arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(String),
    Literal(Literal),
    Udf(UdfCall),
}

/// Literal values in query text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Number(f64),
    Str(String),
}

/// A UDF invocation `name(arg, ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfCall {
    pub name: String,
    pub args: Vec<Expr>,
}

/// ORDER BY entry.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderExpr {
    pub expr: Expr,
    pub desc: bool,
}

// ---------------- TASK DSL ----------------

/// Which tuple variable a template substitution refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleVar {
    /// `tuple[field]` (filters, generative, rank)
    Tuple,
    /// `tuple1[field]` (left side of a join)
    Tuple1,
    /// `tuple2[field]` (right side of a join)
    Tuple2,
}

/// An HTML template with `%s` substitutions: the paper's
/// `"...%s...", tuple[field]` prompt syntax.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    pub format: String,
    pub substitutions: Vec<(TupleVar, String)>,
}

impl Template {
    /// Render with the given per-variable field lookup.
    pub fn render(&self, mut lookup: impl FnMut(TupleVar, &str) -> String) -> String {
        let mut out = String::with_capacity(self.format.len());
        let mut subs = self.substitutions.iter();
        let mut rest = self.format.as_str();
        while let Some(idx) = rest.find("%s") {
            out.push_str(&rest[..idx]);
            match subs.next() {
                Some((var, field)) => out.push_str(&lookup(*var, field)),
                None => out.push_str("%s"),
            }
            rest = &rest[idx + 2..];
        }
        out.push_str(rest);
        out
    }

    /// Number of `%s` markers in the format.
    pub fn placeholder_count(&self) -> usize {
        self.format.matches("%s").count()
    }
}

/// Options in a constrained `Radio(...)` response.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseOption {
    Value(String),
    /// The special UNKNOWN option (§2.4).
    Unknown,
}

/// A `Response:` specification.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseSpec {
    /// `Text("label")` — free text.
    Text { label: String },
    /// `Radio("label", ["a", "b", UNKNOWN])` — constrained.
    Radio {
        label: String,
        options: Vec<ResponseOption>,
    },
}

/// Property values in TASK blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// String template, possibly with substitutions.
    Template(Template),
    /// Bare identifier (e.g. `MajorityVote`).
    Ident(String),
    Number(f64),
    Response(ResponseSpec),
    /// `Fields: { name: { ... }, ... }`
    Fields(Vec<(String, Vec<(String, PropValue)>)>),
}

/// A parsed TASK definition (untyped; `task::TaskDef` validates).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDefAst {
    pub name: String,
    pub params: Vec<String>,
    pub task_type: String,
    pub props: Vec<(String, PropValue)>,
}

impl TaskDefAst {
    pub fn prop(&self, name: &str) -> Option<&PropValue> {
        self.props
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_rendering() {
        let t = Template {
            format: "<img src='%s'> vs <img src='%s'>".into(),
            substitutions: vec![
                (TupleVar::Tuple1, "img".into()),
                (TupleVar::Tuple2, "img".into()),
            ],
        };
        let s = t.render(|var, field| format!("{:?}:{field}", var));
        assert_eq!(s, "<img src='Tuple1:img'> vs <img src='Tuple2:img'>");
        assert_eq!(t.placeholder_count(), 2);
    }

    #[test]
    fn template_with_missing_substitution_keeps_marker() {
        let t = Template {
            format: "a %s b %s".into(),
            substitutions: vec![(TupleVar::Tuple, "x".into())],
        };
        let s = t.render(|_, _| "V".into());
        assert_eq!(s, "a V b %s");
    }

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Gt.eval(Greater));
        assert!(!CmpOp::Ge.eval(Less));
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            table: "celeb".into(),
            alias: Some("c".into()),
        };
        assert_eq!(t.binding(), "c");
        let t = TableRef {
            table: "celeb".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "celeb");
    }

    #[test]
    fn task_prop_lookup_is_case_insensitive() {
        let ast = TaskDefAst {
            name: "t".into(),
            params: vec![],
            task_type: "Filter".into(),
            props: vec![("YesText".into(), PropValue::Ident("Yes".into()))],
        };
        assert!(ast.prop("yestext").is_some());
        assert!(ast.prop("nope").is_none());
    }
}
