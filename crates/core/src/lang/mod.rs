//! The Qurk query language (§2.1–§2.4).
//!
//! Two sub-languages share one lexer:
//!
//! * a SQL dialect — `SELECT … FROM … [JOIN … ON udf(...) [AND POSSIBLY
//!   f(a) = f(b)]…] [WHERE …] [ORDER BY udf(...)] [LIMIT n]`;
//! * the `TASK` template DSL — `TASK name(params) TYPE Filter: …`
//!   blocks that declare how a UDF is rendered as a HIT and how worker
//!   responses are combined.

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{
    CmpOp, Expr, JoinClause, OrderExpr, Predicate, PropValue, Query, ResponseOption, ResponseSpec,
    SelectItem, TableRef, TaskDefAst, Template, TupleVar, UdfCall,
};
pub use parser::{parse_query, parse_tasks};
pub use token::{Lexer, Token, TokenKind};
