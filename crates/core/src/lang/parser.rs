//! Recursive-descent parser for queries and TASK definitions.

use crate::error::{QurkError, Result};
use crate::lang::ast::*;
use crate::lang::token::{source_line, Lexer, Token, TokenKind};

/// Parse a single query.
pub fn parse_query(src: &str) -> Result<Query> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src: src.to_owned(),
    };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse zero or more TASK definitions from one document.
pub fn parse_tasks(src: &str) -> Result<Vec<TaskDefAst>> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src: src.to_owned(),
    };
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.task_def()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Original source text, for error snippets.
    src: String,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn error_here(&self, message: impl Into<String>) -> QurkError {
        let t = self.peek();
        QurkError::Parse {
            message: message.into(),
            line: t.line,
            column: t.column,
            snippet: source_line(self.src.as_bytes(), t.line),
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error_here(format!("unexpected trailing token {:?}", self.peek().kind)))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().kind.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kw}, found {:?}", self.peek().kind)))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kind:?}, found {:?}", self.peek().kind)))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.error_here(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.error_here(format!("expected string, found {other:?}"))),
        }
    }

    // ---------------- queries ----------------

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        let select = self.select_list()?;
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        while self.peek().kind.is_kw("JOIN") {
            joins.push(self.join_clause()?);
        }
        let where_groups = if self.eat_kw("WHERE") {
            self.where_groups()?
        } else {
            Vec::new()
        };
        let mut order_by = Vec::new();
        if self.peek().kind.is_kw("ORDER") {
            self.bump();
            self.expect_kw("BY")?;
            loop {
                order_by.push(self.order_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.peek().kind {
                TokenKind::Number(n) if n >= 0.0 && n.fract() == 0.0 => {
                    self.bump();
                    Some(n as usize)
                }
                _ => return Err(self.error_here("LIMIT expects a non-negative integer")),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            joins,
            where_groups,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut out = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                out.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                match expr {
                    Expr::Column(c) => out.push(SelectItem::Column(c)),
                    Expr::Udf(call) => {
                        let field = if self.eat(&TokenKind::Dot) {
                            Some(self.ident()?)
                        } else {
                            None
                        };
                        out.push(SelectItem::Udf { call, field });
                    }
                    Expr::Literal(_) => {
                        return Err(self.error_here("literals not supported in SELECT"))
                    }
                }
            }
            if !self.eat(&TokenKind::Comma) {
                return Ok(out);
            }
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if matches!(self.peek().kind, TokenKind::Ident(_))
            && !KEYWORDS.iter().any(|k| self.peek().kind.is_kw(k))
        {
            // `FROM celeb c` implicit alias
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn join_clause(&mut self) -> Result<JoinClause> {
        self.expect_kw("JOIN")?;
        let right = self.table_ref()?;
        self.expect_kw("ON")?;
        let on = self.udf_call()?;
        let mut possibly = Vec::new();
        // `AND POSSIBLY ...` clauses; plain `AND` without POSSIBLY is
        // not supported in ON (the paper's joins carry one predicate).
        while self.peek().kind.is_kw("AND") && self.peek_ahead(1).kind.is_kw("POSSIBLY") {
            self.bump(); // AND
            self.bump(); // POSSIBLY
            possibly.push(self.possibly_clause()?);
        }
        Ok(JoinClause {
            right,
            on,
            possibly,
        })
    }

    fn possibly_clause(&mut self) -> Result<PossiblyClause> {
        let call = self.udf_call()?;
        let op = self.cmp_op()?;
        // Right side: udf call, literal, or column-ish token.
        match self.expr()? {
            Expr::Udf(right) => {
                if op != CmpOp::Eq {
                    return Err(self.error_here("feature pairs must be compared with ="));
                }
                Ok(PossiblyClause::FeatureEq { left: call, right })
            }
            Expr::Literal(value) => Ok(PossiblyClause::FeatureLit { call, op, value }),
            Expr::Column(_) => Err(self.error_here("POSSIBLY compares features, not columns")),
        }
    }

    fn where_groups(&mut self) -> Result<Vec<Vec<Predicate>>> {
        let mut groups = vec![Vec::new()];
        loop {
            let p = self.predicate()?;
            groups.last_mut().unwrap().push(p);
            if self.eat_kw("AND") {
                continue;
            }
            if self.eat_kw("OR") {
                groups.push(Vec::new());
                continue;
            }
            return Ok(groups);
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let left = self.expr()?;
        // Comparison?
        if let Ok(op) = self.try_cmp_op() {
            let right = self.expr()?;
            return Ok(Predicate::Compare { left, op, right });
        }
        match left {
            Expr::Udf(call) => Ok(Predicate::Udf(call)),
            _ => Err(self.error_here("expected UDF call or comparison in WHERE")),
        }
    }

    fn try_cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Err(self.error_here("not a comparison")),
        };
        self.bump();
        Ok(op)
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        self.try_cmp_op().map_err(|_| {
            self.error_here(format!("expected comparison, found {:?}", self.peek().kind))
        })
    }

    fn order_expr(&mut self) -> Result<OrderExpr> {
        let expr = self.expr()?;
        let desc = if self.eat_kw("DESC") {
            true
        } else {
            let _ = self.eat_kw("ASC");
            false
        };
        Ok(OrderExpr { expr, desc })
    }

    /// column, literal, or UDF call; columns may be dotted (`c.img`).
    fn expr(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Literal(Literal::Number(n)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Ident(_) => {
                let first = self.ident()?;
                if self.peek().kind == TokenKind::LParen {
                    let call = self.udf_call_named(first)?;
                    return Ok(Expr::Udf(call));
                }
                let mut name = first;
                while self.peek().kind == TokenKind::Dot
                    && matches!(self.peek_ahead(1).kind, TokenKind::Ident(_))
                {
                    self.bump();
                    name.push('.');
                    name.push_str(&self.ident()?);
                }
                Ok(Expr::Column(name))
            }
            other => Err(self.error_here(format!("expected expression, found {other:?}"))),
        }
    }

    fn udf_call(&mut self) -> Result<UdfCall> {
        let name = self.ident()?;
        self.udf_call_named(name)
    }

    fn udf_call_named(&mut self, name: String) -> Result<UdfCall> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(UdfCall { name, args })
    }

    // ---------------- TASK DSL ----------------

    fn task_def(&mut self) -> Result<TaskDefAst> {
        self.expect_kw("TASK")?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                params.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect_kw("TYPE")?;
        let task_type = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let props = self.props_until_task_or_eof()?;
        Ok(TaskDefAst {
            name,
            params,
            task_type,
            props,
        })
    }

    fn props_until_task_or_eof(&mut self) -> Result<Vec<(String, PropValue)>> {
        let mut props = Vec::new();
        while !self.at_eof() && !self.peek().kind.is_kw("TASK") {
            let name = self.ident()?;
            self.expect(TokenKind::Colon)?;
            props.push((name, self.prop_value()?));
        }
        Ok(props)
    }

    fn prop_value(&mut self) -> Result<PropValue> {
        match self.peek().kind.clone() {
            TokenKind::Str(_) => self.template().map(PropValue::Template),
            TokenKind::Number(n) => {
                self.bump();
                Ok(PropValue::Number(n))
            }
            TokenKind::LBrace => self.fields_block(),
            TokenKind::Ident(id)
                if id.eq_ignore_ascii_case("Text") || id.eq_ignore_ascii_case("Radio") =>
            {
                self.response_spec().map(PropValue::Response)
            }
            TokenKind::Ident(_) => Ok(PropValue::Ident(self.ident()?)),
            other => Err(self.error_here(format!("bad property value {other:?}"))),
        }
    }

    fn template(&mut self) -> Result<Template> {
        let format = self.string()?;
        let mut substitutions = Vec::new();
        // `, tuple[field]` / `, tuple1[f1]` sequence.
        while self.peek().kind == TokenKind::Comma
            && matches!(&self.peek_ahead(1).kind, TokenKind::Ident(s)
                if s.eq_ignore_ascii_case("tuple")
                    || s.eq_ignore_ascii_case("tuple1")
                    || s.eq_ignore_ascii_case("tuple2"))
        {
            self.bump(); // comma
            let var = match self.ident()?.to_ascii_lowercase().as_str() {
                "tuple" => TupleVar::Tuple,
                "tuple1" => TupleVar::Tuple1,
                "tuple2" => TupleVar::Tuple2,
                other => return Err(self.error_here(format!("bad tuple variable {other}"))),
            };
            self.expect(TokenKind::LBracket)?;
            let field = self.ident()?;
            self.expect(TokenKind::RBracket)?;
            substitutions.push((var, field));
        }
        Ok(Template {
            format,
            substitutions,
        })
    }

    fn response_spec(&mut self) -> Result<ResponseSpec> {
        let kind = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let label = self.string()?;
        let spec = if kind.eq_ignore_ascii_case("Text") {
            ResponseSpec::Text { label }
        } else {
            self.expect(TokenKind::Comma)?;
            self.expect(TokenKind::LBracket)?;
            let mut options = Vec::new();
            loop {
                match self.peek().kind.clone() {
                    TokenKind::Str(s) => {
                        self.bump();
                        options.push(ResponseOption::Value(s));
                    }
                    TokenKind::Ident(s) if s == "UNKNOWN" => {
                        self.bump();
                        options.push(ResponseOption::Unknown);
                    }
                    other => return Err(self.error_here(format!("bad radio option {other:?}"))),
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBracket)?;
            ResponseSpec::Radio { label, options }
        };
        self.expect(TokenKind::RParen)?;
        Ok(spec)
    }

    fn fields_block(&mut self) -> Result<PropValue> {
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect(TokenKind::Colon)?;
            self.expect(TokenKind::LBrace)?;
            let mut props = Vec::new();
            while self.peek().kind != TokenKind::RBrace {
                let pname = self.ident()?;
                self.expect(TokenKind::Colon)?;
                props.push((pname, self.prop_value()?));
                let _ = self.eat(&TokenKind::Comma);
            }
            self.expect(TokenKind::RBrace)?;
            fields.push((name, props));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RBrace)?;
        Ok(PropValue::Fields(fields))
    }
}

const KEYWORDS: [&str; 12] = [
    "SELECT", "FROM", "JOIN", "ON", "WHERE", "ORDER", "BY", "LIMIT", "AND", "OR", "AS", "POSSIBLY",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_filter_query() {
        let q = parse_query("SELECT c.name FROM celeb AS c WHERE isFemale(c.img)").unwrap();
        assert_eq!(q.select, vec![SelectItem::Column("c.name".into())]);
        assert_eq!(q.from.table, "celeb");
        assert_eq!(q.from.binding(), "c");
        assert_eq!(q.where_groups.len(), 1);
        assert!(matches!(&q.where_groups[0][0], Predicate::Udf(c) if c.name == "isFemale"));
    }

    #[test]
    fn parses_join_with_possibly() {
        let q = parse_query(
            "SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) \
             AND POSSIBLY gender(c.img) = gender(p.img) \
             AND POSSIBLY hairColor(c.img) = hairColor(p.img)",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        let j = &q.joins[0];
        assert_eq!(j.on.name, "samePerson");
        assert_eq!(j.on.args.len(), 2);
        assert_eq!(j.possibly.len(), 2);
        assert!(matches!(
            &j.possibly[0],
            PossiblyClause::FeatureEq { left, right }
                if left.name == "gender" && right.name == "gender"
        ));
    }

    #[test]
    fn parses_possibly_with_literal() {
        let q = parse_query(
            "SELECT name FROM actors JOIN scenes ON inScene(actors.img, scenes.img) \
             AND POSSIBLY numInScene(scenes.img) = 1 \
             ORDER BY name, quality(scenes.img)",
        )
        .unwrap();
        let j = &q.joins[0];
        assert!(matches!(
            &j.possibly[0],
            PossiblyClause::FeatureLit { call, op: CmpOp::Eq, value: Literal::Number(n) }
                if call.name == "numInScene" && *n == 1.0
        ));
        assert_eq!(q.order_by.len(), 2);
        assert!(matches!(&q.order_by[1].expr, Expr::Udf(c) if c.name == "quality"));
    }

    #[test]
    fn parses_order_by_and_limit() {
        let q = parse_query("SELECT label FROM squares ORDER BY squareSorter(img) DESC LIMIT 5")
            .unwrap();
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn parses_generative_field_select() {
        let q = parse_query(
            "SELECT id, animalInfo(img).common, animalInfo(img).species FROM animals AS a",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        assert!(matches!(
            &q.select[1],
            SelectItem::Udf { call, field: Some(f) } if call.name == "animalInfo" && f == "common"
        ));
    }

    #[test]
    fn parses_or_groups() {
        let q = parse_query("SELECT * FROM t WHERE a(x) AND b(x) OR c(x)").unwrap();
        assert_eq!(q.where_groups.len(), 2);
        assert_eq!(q.where_groups[0].len(), 2);
        assert_eq!(q.where_groups[1].len(), 1);
    }

    #[test]
    fn parses_machine_comparison() {
        let q = parse_query("SELECT * FROM t WHERE id < 100 AND isOk(img)").unwrap();
        assert!(matches!(
            &q.where_groups[0][0],
            Predicate::Compare { op: CmpOp::Lt, .. }
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("SELECT * FROM t WHERE a(x) garbage???").is_err());
    }

    #[test]
    fn rejects_bad_limit() {
        assert!(parse_query("SELECT * FROM t LIMIT 2.5").is_err());
    }

    #[test]
    fn parses_filter_task() {
        let tasks = parse_tasks(
            r#"TASK isFemale(field) TYPE Filter:
                Prompt: "<img src='%s'> Is this a woman?", tuple[field]
                YesText: "Yes"
                NoText: "No"
                Combiner: MajorityVote
            "#,
        )
        .unwrap();
        assert_eq!(tasks.len(), 1);
        let t = &tasks[0];
        assert_eq!(t.name, "isFemale");
        assert_eq!(t.params, vec!["field"]);
        assert_eq!(t.task_type, "Filter");
        assert!(matches!(
            t.prop("Prompt"),
            Some(PropValue::Template(tpl)) if tpl.substitutions.len() == 1
        ));
        assert!(matches!(
            t.prop("Combiner"),
            Some(PropValue::Ident(c)) if c == "MajorityVote"
        ));
    }

    #[test]
    fn parses_generative_task_with_fields() {
        let tasks = parse_tasks(
            r#"TASK animalInfo(field) TYPE Generative:
                Prompt: "<img src='%s'> What is this animal?", tuple[field]
                Fields: {
                    common: { Response: Text("Common name"),
                              Combiner: MajorityVote,
                              Normalizer: LowercaseSingleSpace },
                    species: { Response: Text("Species"),
                               Combiner: MajorityVote,
                               Normalizer: LowercaseSingleSpace }
                }
            "#,
        )
        .unwrap();
        let t = &tasks[0];
        let Some(PropValue::Fields(fields)) = t.prop("Fields") else {
            panic!("missing Fields");
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "common");
    }

    #[test]
    fn parses_radio_response_with_unknown() {
        let tasks = parse_tasks(
            r#"TASK gender(field) TYPE Generative:
                Prompt: "<img src='%s'> What is this person's gender?", tuple[field]
                Response: Radio("Gender", ["Male", "Female", UNKNOWN])
                Combiner: MajorityVote
            "#,
        )
        .unwrap();
        let Some(PropValue::Response(ResponseSpec::Radio { options, .. })) =
            tasks[0].prop("Response")
        else {
            panic!("missing radio");
        };
        assert_eq!(options.len(), 3);
        assert_eq!(options[2], ResponseOption::Unknown);
    }

    #[test]
    fn parses_equijoin_task() {
        let tasks = parse_tasks(
            r#"TASK samePerson(f1, f2) TYPE EquiJoin:
                SingularName: "celebrity"
                PluralName: "celebrities"
                LeftPreview: "<img src='%s' class=smImg>", tuple1[f1]
                LeftNormal: "<img src='%s' class=lgImg>", tuple1[f1]
                RightPreview: "<img src='%s' class=smImg>", tuple2[f2]
                RightNormal: "<img src='%s' class=lgImg>", tuple2[f2]
                Combiner: QualityAdjust
            "#,
        )
        .unwrap();
        let t = &tasks[0];
        assert_eq!(t.task_type, "EquiJoin");
        assert_eq!(t.params, vec!["f1", "f2"]);
        let Some(PropValue::Template(tpl)) = t.prop("RightNormal") else {
            panic!();
        };
        assert_eq!(tpl.substitutions[0].0, TupleVar::Tuple2);
    }

    #[test]
    fn parses_rank_task() {
        let tasks = parse_tasks(
            r#"TASK squareSorter(field) TYPE Rank:
                SingularName: "square"
                PluralName: "squares"
                OrderDimensionName: "area"
                LeastName: "smallest"
                MostName: "largest"
                Html: "<img src='%s' class=lgImg>", tuple[field]
            "#,
        )
        .unwrap();
        assert_eq!(tasks[0].task_type, "Rank");
        assert!(matches!(
            tasks[0].prop("OrderDimensionName"),
            Some(PropValue::Template(t)) if t.format == "area"
        ));
    }

    #[test]
    fn parses_multiple_tasks() {
        let tasks = parse_tasks(
            r#"TASK a(x) TYPE Filter:
                Prompt: "%s?", tuple[x]
               TASK b(y) TYPE Filter:
                Prompt: "%s?", tuple[y]
            "#,
        )
        .unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[1].name, "b");
    }

    #[test]
    fn empty_task_document() {
        assert!(parse_tasks("").unwrap().is_empty());
    }

    #[test]
    fn implicit_alias_without_as() {
        let q =
            parse_query("SELECT c.name FROM celeb c JOIN photos p ON same(c.img, p.img)").unwrap();
        assert_eq!(q.from.binding(), "c");
        assert_eq!(q.joins[0].right.binding(), "p");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser never panics: any input yields Ok or a
        /// positioned parse error.
        #[test]
        fn parser_total_on_arbitrary_input(s in ".{0,200}") {
            let _ = parse_query(&s);
            let _ = parse_tasks(&s);
        }

        /// Any input built from query-ish tokens also never panics and
        /// never loops (bounded by the token stream).
        #[test]
        fn parser_total_on_tokenish_input(
            words in prop::collection::vec(
                prop::sample::select(vec![
                    "SELECT", "FROM", "WHERE", "JOIN", "ON", "AND", "OR",
                    "POSSIBLY", "ORDER", "BY", "LIMIT", "AS", "celeb", "c",
                    "img", "f", "(", ")", ",", ".", "=", "<", "3", "\"x\"", "*",
                ]),
                0..24,
            )
        ) {
            let s = words.join(" ");
            let _ = parse_query(&s);
        }

        /// Valid single-filter queries round-trip their structure.
        #[test]
        fn simple_queries_parse(table in "[a-z]{1,8}", col in "[a-z]{1,8}") {
            let q = parse_query(&format!("SELECT {col} FROM {table}")).unwrap();
            prop_assert_eq!(q.from.table, table);
            prop_assert_eq!(q.select.len(), 1);
        }
    }
}
