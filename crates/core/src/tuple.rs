//! Tuples: rows of a relation.

use crate::schema::Schema;
use crate::value::Value;

/// A row. Values are positionally aligned with a [`Schema`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value by column name through a schema (supports qualified names).
    pub fn field<'a>(&'a self, schema: &Schema, name: &str) -> Option<&'a Value> {
        schema.resolve(name).and_then(|i| self.values.get(i))
    }

    /// Concatenate two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Project onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices
                .iter()
                .map(|&i| self.values.get(i).cloned().unwrap_or(Value::Null))
                .collect(),
        }
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ValueType;

    #[test]
    fn field_access_via_schema() {
        let s = Schema::new(&[("c.name", ValueType::Text), ("c.img", ValueType::Item)]);
        let t = Tuple::new(vec![Value::text("alice"), Value::Null]);
        assert_eq!(t.field(&s, "name"), Some(&Value::text("alice")));
        assert_eq!(t.field(&s, "c.name"), Some(&Value::text("alice")));
        assert_eq!(t.field(&s, "missing"), None);
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Tuple::new(vec![Value::Int(3)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c[2], Value::Int(3));
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn project_out_of_range_gives_null() {
        let t = Tuple::new(vec![Value::Int(1)]);
        assert_eq!(t.project(&[5]).values(), &[Value::Null]);
    }

    #[test]
    fn indexing() {
        let t = Tuple::from(vec![Value::Bool(true)]);
        assert_eq!(t[0], Value::Bool(true));
        assert_eq!(t.get(1), None);
    }
}
