//! Join experiments: Table 1, Figure 3, Figure 4, and the §3.3.3
//! worker-volume vs. accuracy regression.
//!
//! Protocol (§3.3.2): each configuration runs twice (Trial #1 before
//! 11 AM, Trial #2 after 7 PM virtual time) with 5 assignments per
//! HIT; votes are pooled to 10 per pair before combining with
//! MajorityVote and QualityAdjust.

use std::collections::HashMap;

use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::task::CombinerKind;
use qurk_combine::em::{LabelObservation, QualityAdjust, QualityAdjustConfig};
use qurk_combine::majority_vote_bool;
use qurk_crowd::WorkerId;
use qurk_metrics::{linear_regression, percentile};

use crate::report::{f, Table};
use crate::world::{celebrity_world, is_true_match, TrialSpec};

/// One batching scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    Simple,
    Naive(usize),
    Smart(usize, usize),
}

impl Scheme {
    pub fn label(&self) -> String {
        match self {
            Scheme::Simple => "Simple".to_owned(),
            Scheme::Naive(b) => format!("Naive {b}"),
            Scheme::Smart(r, c) => format!("Smart {r}x{c}"),
        }
    }

    pub fn strategy(&self) -> JoinStrategy {
        match *self {
            Scheme::Simple => JoinStrategy::Simple,
            Scheme::Naive(b) => JoinStrategy::NaiveBatch(b),
            Scheme::Smart(r, c) => JoinStrategy::SmartBatch { rows: r, cols: c },
        }
    }
}

/// Pooled two-trial vote set for one scheme, plus bookkeeping.
#[derive(Debug)]
pub struct SchemeRun {
    pub scheme: Scheme,
    /// Pooled votes per (celeb_idx, photo_idx); workers from trial 2
    /// are offset to stay distinct.
    pub votes: HashMap<(usize, usize), Vec<(WorkerId, bool)>>,
    /// Per-trial latency samples (seconds from group post to
    /// assignment submit).
    pub latencies: [Vec<f64>; 2],
    pub hits_per_trial: usize,
    pub n: usize,
}

/// Outcome counts under one combiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    pub true_pos: usize,
    pub true_neg: usize,
    pub n: usize,
}

impl Counts {
    pub fn tp_fraction(&self) -> f64 {
        self.true_pos as f64 / self.n as f64
    }

    pub fn tn_fraction(&self) -> f64 {
        self.true_neg as f64 / (self.n * self.n - self.n) as f64
    }
}

/// Run one scheme over the two-trial protocol at table size `n`.
pub fn run_scheme(scheme: Scheme, n: usize, base_seed: u64) -> SchemeRun {
    let mut votes: HashMap<(usize, usize), Vec<(WorkerId, bool)>> = HashMap::new();
    let mut latencies: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut hits_per_trial = 0;
    for (t, trial) in [
        TrialSpec::morning(base_seed),
        TrialSpec::evening(base_seed ^ 0xFFFF),
    ]
    .into_iter()
    .enumerate()
    {
        let (mut market, ds) = celebrity_world(n, trial);
        let op = JoinOp {
            strategy: scheme.strategy(),
            combiner: CombinerKind::MajorityVote, // combiner applied later on pooled votes
            ..Default::default()
        };
        let out = op
            .run(&mut market, &ds.celeb_items, &ds.photo_items, None)
            .expect("join should complete");
        hits_per_trial = out.hits_posted;
        for (pair, vs) in out.pair_votes {
            let entry = votes.entry(pair).or_default();
            for (w, b) in vs {
                // Offset trial-2 workers so EM sees distinct raters.
                entry.push((WorkerId(w.0 + t * 100_000), b));
            }
        }
        // Latency for the (single) join group of this trial.
        latencies[t] = market.group_latencies(qurk_crowd::HitGroupId(0));
    }
    SchemeRun {
        scheme,
        votes,
        latencies,
        hits_per_trial,
        n,
    }
}

/// Combine pooled votes with MajorityVote and count TP/TN.
pub fn counts_mv(run: &SchemeRun) -> Counts {
    let ds_truth = truth_table(run.n);
    let mut tp = 0;
    let mut tn = 0;
    for (&(i, j), vs) in &run.votes {
        let bools: Vec<bool> = vs.iter().map(|&(_, b)| b).collect();
        let decided = majority_vote_bool(&bools);
        if ds_truth[&(i, j)] {
            tp += usize::from(decided);
        } else {
            tn += usize::from(!decided);
        }
    }
    Counts {
        true_pos: tp,
        true_neg: tn,
        n: run.n,
    }
}

/// Combine pooled votes with QualityAdjust (5 EM iterations, FN cost
/// 2×) and count TP/TN.
pub fn counts_qa(run: &SchemeRun) -> Counts {
    let ds_truth = truth_table(run.n);
    let mut pair_ids: Vec<(usize, usize)> = run.votes.keys().copied().collect();
    pair_ids.sort_unstable();
    let index: HashMap<(usize, usize), usize> =
        pair_ids.iter().enumerate().map(|(k, &p)| (p, k)).collect();
    let mut workers: HashMap<WorkerId, usize> = HashMap::new();
    let mut obs = Vec::new();
    for (&pair, vs) in &run.votes {
        for &(w, b) in vs {
            let next = workers.len();
            let wid = *workers.entry(w).or_insert(next);
            obs.push(LabelObservation {
                worker: wid,
                item: index[&pair],
                label: usize::from(b),
            });
        }
    }
    let qa = QualityAdjust::new(QualityAdjustConfig::paper_join());
    let out = qa.run(&obs);
    let mut tp = 0;
    let mut tn = 0;
    for &pair in &pair_ids {
        let decided = out.decision_bool(index[&pair]);
        if ds_truth[&pair] {
            tp += usize::from(decided);
        } else {
            tn += usize::from(!decided);
        }
    }
    Counts {
        true_pos: tp,
        true_neg: tn,
        n: run.n,
    }
}

fn truth_table(n: usize) -> HashMap<(usize, usize), bool> {
    // The dataset seed is fixed in `celebrity_world`, so the owner
    // permutation is reproducible here.
    let (_, ds) = celebrity_world(n, TrialSpec::morning(0));
    let mut m = HashMap::new();
    for i in 0..n {
        for j in 0..n {
            m.insert((i, j), is_true_match(&ds, i, j));
        }
    }
    m
}

/// Table 1: baseline (unbatched) comparison of the three algorithms at
/// N = 20 with 10 pooled assignments.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: baseline join comparison (20 celebrities, 10 assignments)",
        &["Implementation", "TP (MV)", "TP (QA)", "TN (MV)", "TN (QA)"],
    );
    t.row(vec![
        "IDEAL".into(),
        "20".into(),
        "20".into(),
        "380".into(),
        "380".into(),
    ]);
    for (scheme, seed) in [
        (Scheme::Simple, 101),
        (Scheme::Naive(1), 102),
        (Scheme::Smart(1, 1), 103),
    ] {
        let run = run_scheme(scheme, 20, seed);
        let mv = counts_mv(&run);
        let qa = counts_qa(&run);
        let label = match scheme {
            Scheme::Simple => "Simple",
            Scheme::Naive(_) => "Naive",
            Scheme::Smart(..) => "Smart",
        };
        t.row(vec![
            label.into(),
            mv.true_pos.to_string(),
            qa.true_pos.to_string(),
            mv.true_neg.to_string(),
            qa.true_neg.to_string(),
        ]);
    }
    t
}

/// The Figure 3 scheme list.
pub fn fig3_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Simple,
        Scheme::Naive(3),
        Scheme::Naive(5),
        Scheme::Naive(10),
        Scheme::Smart(2, 2),
        Scheme::Smart(3, 3),
    ]
}

/// Figure 3: fraction of correct answers per batching scheme at
/// N = 30 (30 matches / 870 non-matches), MV vs QA.
pub fn fig3() -> (Table, Vec<(Scheme, Counts, Counts)>) {
    let mut t = Table::new(
        "Figure 3: celebrity join accuracy vs batching (30 celebrities)",
        &[
            "Scheme",
            "TP frac (MV)",
            "TP frac (QA)",
            "TN frac (MV)",
            "TN frac (QA)",
        ],
    );
    let mut results = Vec::new();
    for (k, scheme) in fig3_schemes().into_iter().enumerate() {
        let run = run_scheme(scheme, 30, 200 + k as u64);
        let mv = counts_mv(&run);
        let qa = counts_qa(&run);
        t.row(vec![
            scheme.label(),
            f(mv.tp_fraction(), 2),
            f(qa.tp_fraction(), 2),
            f(mv.tn_fraction(), 2),
            f(qa.tn_fraction(), 2),
        ]);
        results.push((scheme, mv, qa));
    }
    (t, results)
}

/// Figure 4: completion-time percentiles (hours) of the assignments
/// for each scheme, per trial.
pub fn fig4() -> Table {
    let mut t = Table::new(
        "Figure 4: completion time (hours) per join variant (30 celebrities)",
        &["Scheme", "Trial", "50%", "95%", "100%"],
    );
    for (k, scheme) in fig3_schemes().into_iter().enumerate() {
        let run = run_scheme(scheme, 30, 300 + k as u64);
        for (trial, lats) in run.latencies.iter().enumerate() {
            let hours = |p: f64| percentile(lats, p).unwrap_or(0.0) / 3600.0;
            t.row(vec![
                scheme.label(),
                if trial == 0 { "#1 (am)" } else { "#2 (pm)" }.into(),
                f(hours(50.0), 2),
                f(hours(95.0), 2),
                f(hours(100.0), 2),
            ]);
        }
    }
    t
}

/// §3.3.3: regress per-worker accuracy on tasks completed over the two
/// Simple 30×30 trials. The paper reports R² = 0.028, positive slope,
/// p < .05 — i.e. volume explains almost nothing.
pub fn assignments_vs_accuracy() -> (Table, Option<qurk_metrics::Regression>) {
    let run = run_scheme(Scheme::Simple, 30, 400);
    let truth = truth_table(30);
    let mut per_worker: HashMap<WorkerId, (usize, usize)> = HashMap::new(); // (correct, total)
    for (&pair, vs) in &run.votes {
        for &(w, b) in vs {
            let e = per_worker.entry(w).or_default();
            e.1 += 1;
            if b == truth[&pair] {
                e.0 += 1;
            }
        }
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (_, (correct, total)) in per_worker.iter() {
        // Every worker participates, as in the paper's fit; one-task
        // workers carry high variance but belong to the population.
        if *total >= 1 {
            xs.push(*total as f64);
            ys.push(*correct as f64 / *total as f64);
        }
    }
    let reg = linear_regression(&xs, &ys).ok();
    let mut t = Table::new(
        "Sec 3.3.3: worker task volume vs accuracy (Simple 30x30, pooled trials)",
        &["workers", "R^2", "slope", "p-value"],
    );
    match &reg {
        Some(r) => {
            t.row(vec![
                xs.len().to_string(),
                f(r.r_squared, 3),
                format!("{:+.5}", r.slope),
                f(r.p_value, 3),
            ]);
        }
        None => {
            t.row(vec![
                xs.len().to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    (t, reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_schemes_are_accurate_at_n10() {
        // Small-n smoke version of Table 1's claim: unbatched schemes
        // all come close to ideal.
        for scheme in [Scheme::Simple, Scheme::Naive(1), Scheme::Smart(1, 1)] {
            let run = run_scheme(scheme, 10, 7);
            let mv = counts_mv(&run);
            assert!(mv.true_pos >= 9, "{scheme:?} tp={}", mv.true_pos);
            assert!(mv.true_neg >= 88, "{scheme:?} tn={}", mv.true_neg);
        }
    }

    #[test]
    fn pooled_votes_have_ten_assignments() {
        let run = run_scheme(Scheme::Simple, 5, 8);
        for vs in run.votes.values() {
            assert_eq!(vs.len(), 10, "expected 2 trials x 5 assignments");
        }
        assert_eq!(run.votes.len(), 25);
    }

    #[test]
    fn qa_not_worse_than_mv_on_batched_scheme() {
        let run = run_scheme(Scheme::Smart(3, 3), 12, 9);
        let mv = counts_mv(&run);
        let qa = counts_qa(&run);
        assert!(
            qa.true_pos >= mv.true_pos,
            "QA {} vs MV {}",
            qa.true_pos,
            mv.true_pos
        );
    }

    #[test]
    fn latencies_captured_for_both_trials() {
        let run = run_scheme(Scheme::Naive(5), 6, 10);
        assert!(!run.latencies[0].is_empty());
        assert!(!run.latencies[1].is_empty());
    }
}
