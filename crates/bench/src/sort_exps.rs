//! Sort experiments: the §4.2.2 square microbenchmarks, Figure 6
//! (τ and κ across ambiguity), Figure 7 (hybrid convergence) and
//! §4.2.4 (hybrid on animals).

use qurk::ops::sort::{CompareSort, HybridSort, HybridStrategy, PairTally, RateSort};
use qurk_crowd::{ItemId, Marketplace};
use qurk_data::animals::{DANGER, RANDOM, SATURN, SIZE};
use qurk_data::squares::AREA;
use qurk_metrics::kappa::modified_fleiss_kappa;
use qurk_metrics::{mean, sample_std, tau_between_orders};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{f, Table};
use crate::world::{animals_world, squares_world, TrialSpec};

/// §4.2.2 "Comparison batching": 40 squares at group size 5, 10, 20.
/// S ∈ {5, 10} reach τ = 1.0; S = 20 stalls (nobody accepts ~76 work
/// units for $0.01).
pub fn squares_compare() -> Table {
    let mut t = Table::new(
        "Sec 4.2.2: Compare batching on 40 squares",
        &["Group size", "HITs", "tau", "100% latency (h)", "Status"],
    );
    for (s, seed) in [(5usize, 601u64), (10, 602), (20, 603)] {
        let (mut market, ds) = squares_world(40, TrialSpec::morning(seed));
        let op = CompareSort {
            group_size: s,
            // The paper stopped the group-size-20 run "after several
            // hours of uncompleted HITs": give each run 12 virtual
            // hours.
            limit_secs: 12.0 * 3600.0,
            ..Default::default()
        };
        match op.run(&mut market, &ds.items, AREA) {
            Ok(out) => {
                let tau = tau_between_orders(&out.order, &ds.true_order_desc()).unwrap_or(0.0);
                let lat = market.group_latencies(qurk_crowd::HitGroupId(0));
                let max_h = lat.iter().cloned().fold(0.0, f64::max) / 3600.0;
                t.row(vec![
                    s.to_string(),
                    out.hits_posted.to_string(),
                    f(tau, 3),
                    f(max_h, 2),
                    "completed".into(),
                ]);
            }
            Err(_) => {
                t.row(vec![
                    s.to_string(),
                    "-".into(),
                    "-".into(),
                    ">12".into(),
                    "STALLED (workers refuse batch)".into(),
                ]);
            }
        }
    }
    t
}

/// §4.2.2 "Rating batching": 40 squares, batch sizes 1–10, two trials;
/// plus the 5-vs-10-assignment check. Expect τ ≈ 0.78 avg, std ≈ 0.06.
pub fn squares_rate_batching() -> Table {
    let mut t = Table::new(
        "Sec 4.2.2: Rate batching on 40 squares (two trials each)",
        &["Batch", "Assignments", "HITs", "tau t1", "tau t2", "avg"],
    );
    let mut all_taus = Vec::new();
    for (batch, seed) in [(1usize, 611u64), (2, 612), (5, 613), (10, 614)] {
        let mut taus = Vec::new();
        let mut hits = 0;
        for trial in [TrialSpec::morning(seed), TrialSpec::evening(seed ^ 0xAB)] {
            let (mut market, ds) = squares_world(40, trial);
            let op = RateSort {
                batch_size: batch,
                ..Default::default()
            };
            let out = op.run(&mut market, &ds.items, AREA).unwrap();
            hits = out.hits_posted;
            taus.push(tau_between_orders(&out.order, &ds.true_order_desc()).unwrap());
        }
        all_taus.extend(taus.clone());
        t.row(vec![
            batch.to_string(),
            "5".into(),
            hits.to_string(),
            f(taus[0], 3),
            f(taus[1], 3),
            f((taus[0] + taus[1]) / 2.0, 3),
        ]);
    }
    // 10 assignments at batch 5 for the diminishing-returns check.
    let (mut market, ds) = squares_world(40, TrialSpec::morning(615));
    let op = RateSort {
        batch_size: 5,
        assignments: Some(10),
        ..Default::default()
    };
    let out = op.run(&mut market, &ds.items, AREA).unwrap();
    let tau10 = tau_between_orders(&out.order, &ds.true_order_desc()).unwrap();
    t.row(vec![
        "5".into(),
        "10".into(),
        out.hits_posted.to_string(),
        f(tau10, 3),
        "-".into(),
        f(tau10, 3),
    ]);
    t.row(vec![
        "ALL".into(),
        "5".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!(
            "{:.3} (std {:.3})",
            mean(&all_taus).unwrap(),
            sample_std(&all_taus).unwrap()
        ),
    ]);
    t
}

/// §4.2.2 "Rating granularity": dataset sizes 20–50 at batch 5; τ is
/// expected to stay flat (avg ≈ 0.8, std ≈ 0.04).
pub fn rating_granularity() -> Table {
    let mut t = Table::new(
        "Sec 4.2.2: rating granularity vs dataset size (7-point scale, batch 5)",
        &["Squares", "HITs", "tau"],
    );
    let mut taus = Vec::new();
    for (k, n) in (20..=50).step_by(5).enumerate() {
        let (mut market, ds) = squares_world(n, TrialSpec::morning(620 + k as u64));
        let out = RateSort::default()
            .run(&mut market, &ds.items, AREA)
            .unwrap();
        let tau = tau_between_orders(&out.order, &ds.true_order_desc()).unwrap();
        taus.push(tau);
        t.row(vec![n.to_string(), out.hits_posted.to_string(), f(tau, 3)]);
    }
    t.row(vec![
        "avg".into(),
        "-".into(),
        format!(
            "{:.3} (std {:.3})",
            mean(&taus).unwrap(),
            sample_std(&taus).unwrap()
        ),
    ]);
    t
}

/// Modified Fleiss κ over a Compare tally, with randomized pair
/// orientation so category priors stay ≈ 50/50 (see the kappa module
/// docs: the paper removes the prior compensation because comparator
/// categories are correlated; randomizing orientation achieves the
/// same decoupling deterministically).
pub fn comparison_kappa(tally: &PairTally, n: usize, restrict: Option<&[usize]>) -> f64 {
    let included = |i: usize| restrict.is_none_or(|r| r.contains(&i));
    let mut counts: Vec<Vec<u32>> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if !included(i) || !included(j) {
                continue;
            }
            let (wi, wj) = tally.votes(i, j);
            if wi + wj < 2 {
                continue;
            }
            // Deterministic orientation flip.
            let flip = (i.wrapping_mul(2654435761) ^ j.wrapping_mul(40503)) & 1 == 1;
            if flip {
                counts.push(vec![wj, wi]);
            } else {
                counts.push(vec![wi, wj]);
            }
        }
    }
    modified_fleiss_kappa(&counts).unwrap_or(0.0)
}

/// τ between a Rate order and a Compare order restricted to a subset
/// of items.
fn tau_on_subset(rate: &[ItemId], compare: &[ItemId], subset: &[ItemId]) -> Option<f64> {
    let keep: std::collections::HashSet<ItemId> = subset.iter().copied().collect();
    let r: Vec<ItemId> = rate.iter().filter(|i| keep.contains(i)).copied().collect();
    let c: Vec<ItemId> = compare
        .iter()
        .filter(|i| keep.contains(i))
        .copied()
        .collect();
    tau_between_orders(&r, &c).ok()
}

/// One Figure 6 query: its label and its (market, items, dimension).
pub struct Fig6Query {
    pub label: &'static str,
    pub tau_full: f64,
    pub tau_sample_mean: f64,
    pub tau_sample_std: f64,
    pub kappa_full: f64,
    pub kappa_sample_mean: f64,
    pub kappa_sample_std: f64,
}

/// Figure 6: τ (Rate vs Compare) and modified κ (comparison agreement)
/// for Q1–Q5, on full data and on 50 ten-item samples.
pub fn fig6() -> (Table, Vec<Fig6Query>) {
    let mut results = Vec::new();

    let mut run_query =
        |label: &'static str, market: &mut Marketplace, items: &[ItemId], dim: &str, seed: u64| {
            let compare = CompareSort::default().run(market, items, dim).unwrap();
            let rate = RateSort::default().run(market, items, dim).unwrap();
            // The paper uses Compare results as ground truth.
            let tau_full = tau_between_orders(&rate.order, &compare.order).unwrap_or(0.0);
            let kappa_full = comparison_kappa(&compare.tally, items.len(), None);

            let mut rng = StdRng::seed_from_u64(seed);
            let mut taus = Vec::new();
            let mut kappas = Vec::new();
            for _ in 0..50 {
                let idxs = qurk_crowd::rng::sample_distinct(&mut rng, items.len(), 10);
                let subset: Vec<ItemId> = idxs.iter().map(|&i| items[i]).collect();
                if let Some(tv) = tau_on_subset(&rate.order, &compare.order, &subset) {
                    taus.push(tv);
                }
                kappas.push(comparison_kappa(&compare.tally, items.len(), Some(&idxs)));
            }
            results.push(Fig6Query {
                label,
                tau_full,
                tau_sample_mean: mean(&taus).unwrap_or(0.0),
                tau_sample_std: sample_std(&taus).unwrap_or(0.0),
                kappa_full,
                kappa_sample_mean: mean(&kappas).unwrap_or(0.0),
                kappa_sample_std: sample_std(&kappas).unwrap_or(0.0),
            });
        };

    // Q1: squares by size.
    {
        let (mut market, ds) = squares_world(40, TrialSpec::morning(631));
        run_query("Q1 squares/size", &mut market, &ds.items, AREA, 641);
    }
    // Q2-Q4: animals.
    for (label, dim, seed) in [
        ("Q2 animals/size", SIZE, 632u64),
        ("Q3 animals/danger", DANGER, 633),
        ("Q4 animals/saturn", SATURN, 634),
    ] {
        let (mut market, ds) = animals_world(TrialSpec::morning(seed));
        run_query(label, &mut market, &ds.items, dim, seed + 10);
    }
    // Q5: artificially random responses.
    {
        let (mut market, ds) = animals_world(TrialSpec::morning(635));
        run_query("Q5 random", &mut market, &ds.items, RANDOM, 645);
    }

    let mut t = Table::new(
        "Figure 6: tau and modified kappa across query ambiguity",
        &[
            "Query",
            "tau",
            "tau sample (std)",
            "kappa",
            "kappa sample (std)",
        ],
    );
    for r in &results {
        t.row(vec![
            r.label.into(),
            f(r.tau_full, 3),
            format!("{:.3} ({:.3})", r.tau_sample_mean, r.tau_sample_std),
            f(r.kappa_full, 3),
            format!("{:.3} ({:.3})", r.kappa_sample_mean, r.kappa_sample_std),
        ]);
    }
    (t, results)
}

/// One hybrid trajectory: τ against ground truth after each extra HIT.
pub struct HybridSeries {
    pub label: String,
    pub rate_tau: f64,
    pub taus: Vec<f64>,
}

/// Figure 7: hybrid convergence on the 40-square dataset. Strategies:
/// Random, Confidence, Window t=5 (degenerate: divides 40), Window
/// t=6. Compare costs ~80 HITs for τ = 1; Rate costs 8 for τ ≈ 0.78.
pub fn fig7(iterations: usize) -> (Table, Vec<HybridSeries>, usize, f64) {
    let strategies: Vec<(String, HybridStrategy)> = vec![
        ("Random".into(), HybridStrategy::Random),
        ("Confidence".into(), HybridStrategy::Confidence),
        ("Window t=5".into(), HybridStrategy::Window { t: 5 }),
        ("Window t=6".into(), HybridStrategy::Window { t: 6 }),
    ];
    let mut series = Vec::new();
    for (k, (label, strategy)) in strategies.into_iter().enumerate() {
        let (mut market, ds) = squares_world(40, TrialSpec::morning(651 + k as u64));
        let truth_order = ds.true_order_desc();
        let hybrid = HybridSort {
            strategy,
            ..Default::default()
        };
        let out = hybrid
            .run(&mut market, &ds.items, AREA, iterations)
            .unwrap();
        let rate_tau = tau_between_orders(&out.initial.order, &truth_order).unwrap_or(0.0);
        let taus: Vec<f64> = out
            .trajectory
            .iter()
            .map(|o| tau_between_orders(o, &truth_order).unwrap_or(0.0))
            .collect();
        series.push(HybridSeries {
            label,
            rate_tau,
            taus,
        });
    }
    // Reference points: full Compare cost and its tau.
    let (mut market, ds) = squares_world(40, TrialSpec::morning(660));
    let cmp = CompareSort::default()
        .run(&mut market, &ds.items, AREA)
        .unwrap();
    let cmp_tau = tau_between_orders(&cmp.order, &ds.true_order_desc()).unwrap();

    let mut t = Table::new(
        "Figure 7: hybrid sort on 40 squares (tau after k extra comparison HITs)",
        &["Strategy", "rate tau", "+10", "+20", "+30", "+40", "final"],
    );
    for s in &series {
        let at = |k: usize| {
            s.taus
                .get(k.min(s.taus.len()) - 1)
                .copied()
                .unwrap_or(f64::NAN)
        };
        t.row(vec![
            s.label.clone(),
            f(s.rate_tau, 3),
            f(at(10), 3),
            f(at(20), 3),
            f(at(30), 3),
            f(at(40), 3),
            f(*s.taus.last().unwrap_or(&f64::NAN), 3),
        ]);
    }
    t.row(vec![
        format!("Compare ({} HITs)", cmp.hits_posted),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        f(cmp_tau, 3),
    ]);
    (t, series, cmp.hits_posted, cmp_tau)
}

/// §4.2.4: hybrid (Window) on the animals size query; the paper saw τ
/// improve from ~.76 to ~.90 within 20 iterations.
pub fn fig7_animals() -> Table {
    let (mut market, ds) = animals_world(TrialSpec::morning(671));
    let truth_order = market.truth().true_order(&ds.items, SIZE);
    let hybrid = HybridSort {
        strategy: HybridStrategy::Window { t: 6 },
        ..Default::default()
    };
    let out = hybrid.run(&mut market, &ds.items, SIZE, 20).unwrap();
    let tau0 = tau_between_orders(&out.initial.order, &truth_order).unwrap();
    let mut t = Table::new(
        "Sec 4.2.4: hybrid on animals Q2 (Window t=6)",
        &["Iteration", "tau"],
    );
    t.row(vec!["0 (rate only)".into(), f(tau0, 3)]);
    for k in [5usize, 10, 15, 20] {
        let tau = tau_between_orders(&out.trajectory[k - 1], &truth_order).unwrap();
        t.row(vec![k.to_string(), f(tau, 3)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_on_squares_is_essentially_perfect() {
        let (mut market, ds) = squares_world(20, TrialSpec::morning(1));
        let out = CompareSort::default()
            .run(&mut market, &ds.items, AREA)
            .unwrap();
        let tau = tau_between_orders(&out.order, &ds.true_order_desc()).unwrap();
        assert!(tau > 0.97, "tau={tau}");
    }

    #[test]
    fn rate_on_squares_lands_in_paper_band() {
        let mut taus = Vec::new();
        for seed in 0..4 {
            let (mut market, ds) = squares_world(40, TrialSpec::morning(seed));
            let out = RateSort::default()
                .run(&mut market, &ds.items, AREA)
                .unwrap();
            taus.push(tau_between_orders(&out.order, &ds.true_order_desc()).unwrap());
        }
        let avg = mean(&taus).unwrap();
        assert!(
            (0.65..=0.92).contains(&avg),
            "avg tau={avg} (paper: 0.78 +/- 0.058), taus={taus:?}"
        );
    }

    #[test]
    fn comparison_kappa_monotone_in_ambiguity() {
        let (mut market, ds) = animals_world(TrialSpec::morning(5));
        let size = CompareSort::default()
            .run(&mut market, &ds.items, SIZE)
            .unwrap();
        let saturn = CompareSort::default()
            .run(&mut market, &ds.items, SATURN)
            .unwrap();
        let random = CompareSort::default()
            .run(&mut market, &ds.items, RANDOM)
            .unwrap();
        let k_size = comparison_kappa(&size.tally, 27, None);
        let k_saturn = comparison_kappa(&saturn.tally, 27, None);
        let k_random = comparison_kappa(&random.tally, 27, None);
        assert!(k_size > k_saturn, "size {k_size} vs saturn {k_saturn}");
        assert!(
            k_saturn > k_random - 0.02,
            "saturn {k_saturn} vs random {k_random}"
        );
        assert!(k_random.abs() < 0.12, "random kappa={k_random}");
    }

    #[test]
    fn subset_tau_well_defined() {
        let rate: Vec<ItemId> = (0..10).map(ItemId).collect();
        let mut compare = rate.clone();
        compare.swap(0, 1);
        let subset: Vec<ItemId> = (0..5).map(ItemId).collect();
        let tau = tau_on_subset(&rate, &compare, &subset).unwrap();
        assert!(tau < 1.0 && tau > 0.0);
    }
}
