//! # qurk-bench
//!
//! The reproduction harness for every table and figure in
//! *Human-powered Sorts and Joins* (Marcus et al., VLDB 2011).
//!
//! Each module regenerates one experiment family against the simulated
//! marketplace and prints the same rows/series the paper reports; the
//! `repro` binary drives them (`cargo run --release --bin repro -- --all`).
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured numbers.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`join_exps`] | Table 1, Figure 3, Figure 4, §3.3.3 regression |
//! | [`feature_exps`] | Table 2, Table 3, Table 4 |
//! | [`sort_exps`] | §4.2.2 microbenchmarks, Figure 6, Figure 7, §4.2.4 |
//! | [`end_to_end`] | Table 5, §3.3.2/§3.4 cost arithmetic |
//! | [`opt_exps`] | cost-based optimizer vs as-written plans (ISSUE 2) |
//! | [`wallclock`] | data-layout pass wall-clock gate (ISSUE 9) |
//! | [`ablations`] | DESIGN.md §5 design-choice ablations |
//! | [`world`] | shared dataset/marketplace builders |
//! | [`report`] | table/series formatting |

pub mod ablations;
pub mod end_to_end;
pub mod feature_exps;
pub mod join_exps;
pub mod opt_exps;
pub mod report;
pub mod sort_exps;
pub mod wallclock;
pub mod world;
