//! `optbench` — the optimizer-vs-as-written bench smoke job.
//!
//! Runs the cost-based optimizer against the as-written plans on the
//! celebrity-join, squares-sort and movie-filters workloads, prints
//! the comparison table, and writes `BENCH_optimizer.json` (HITs, $,
//! latency per strategy, plus the cost model's estimates vs replayed
//! actuals) for the CI artifact.
//!
//! ```text
//! cargo run --release -p qurk-bench --bin optbench [-- <output.json>]
//! ```

use qurk_bench::opt_exps;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_optimizer.json".to_owned());
    let t0 = std::time::Instant::now();
    let results = opt_exps::compare_workloads();
    opt_exps::comparison_table(&results).print();
    for r in &results {
        for d in &r.decisions {
            println!("[{}] {}", r.workload, d);
        }
    }
    match opt_exps::write_json(&results, &path) {
        Ok(()) => eprintln!(
            "[optbench] wrote {path} in {:.1}s",
            t0.elapsed().as_secs_f64()
        ),
        Err(e) => {
            eprintln!("[optbench] failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
