//! `wallbench` — the data-layout wall-clock suite (ISSUE 9).
//!
//! Times the retained naive baselines against the optimized hot paths
//! (EM combine, τ/κ metrics, machine-side join candidate generation),
//! medians the three standard end-to-end workloads, and writes
//! `BENCH_wallclock.json` for the CI artifact and the tier-1 gate.
//!
//! ```text
//! cargo run --release -p qurk-bench --bin wallbench [-- <output.json>]
//! cargo run --release -p qurk-bench --bin wallbench -- --check
//! ```
//!
//! `--check` re-runs the suite and diffs it against the committed
//! artifact instead of writing: exits non-zero if the gate fails or
//! any bench's speedup collapsed beyond the snapshot tolerance.

use qurk_bench::wallclock::{self, committed_artifact_path, GATE_MIN_SPEEDUP, SNAPSHOT_TOLERANCE};

fn main() {
    let arg = std::env::args().nth(1);
    let t0 = std::time::Instant::now();
    let report = wallclock::run_suite();

    for m in &report.micro {
        println!(
            "[wallbench] {}: {:.2}x  ({} ns -> {} ns, {:.0} elem/s)",
            m.name,
            m.speedup,
            m.baseline_median_ns,
            m.optimized_median_ns,
            m.optimized_elems_per_sec
        );
    }
    for w in &report.workloads {
        println!(
            "[wallbench] workload {}: median {:.1} ms",
            w.workload,
            w.median_ns as f64 / 1e6
        );
    }
    if !report.passes_gate() {
        eprintln!("[wallbench] GATE FAILED: no gated microbench reached {GATE_MIN_SPEEDUP}x");
        std::process::exit(1);
    }

    if arg.as_deref() == Some("--check") {
        let path = committed_artifact_path();
        let committed = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("[wallbench] cannot read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let mut failed = false;
        for (name, committed_speedup) in wallclock::parse_speedups(&committed) {
            match report.micro.iter().find(|m| m.name == name) {
                Some(cur) if cur.speedup >= committed_speedup / SNAPSHOT_TOLERANCE => {
                    println!(
                        "[wallbench] {name}: {:.2}x vs committed {committed_speedup:.2}x — ok",
                        cur.speedup
                    );
                }
                Some(cur) => {
                    eprintln!(
                        "[wallbench] {name}: REGRESSED to {:.2}x vs committed \
                         {committed_speedup:.2}x (tolerance {SNAPSHOT_TOLERANCE}x)",
                        cur.speedup
                    );
                    failed = true;
                }
                None => {
                    eprintln!("[wallbench] {name}: committed bench no longer exists");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "[wallbench] check passed in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        return;
    }

    let path = arg.unwrap_or_else(|| "BENCH_wallclock.json".to_owned());
    match wallclock::write_json(&report, &path) {
        Ok(()) => eprintln!(
            "[wallbench] wrote {path} in {:.1}s",
            t0.elapsed().as_secs_f64()
        ),
        Err(e) => {
            eprintln!("[wallbench] failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
