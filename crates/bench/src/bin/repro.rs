//! `repro` — regenerate every table and figure from *Human-powered
//! Sorts and Joins* (VLDB 2011) against the simulated crowd.
//!
//! ```text
//! cargo run --release --bin repro -- --all
//! cargo run --release --bin repro -- --table1 --fig3
//! ```
//!
//! Flags (any subset; `--all` runs everything):
//!   --table1              baseline join comparison
//!   --fig3                batching vs accuracy
//!   --fig4                latency percentiles
//!   --sec333              worker volume vs accuracy regression
//!   --table2              feature filtering effectiveness
//!   --table3              leave-one-out features
//!   --table4              feature kappas
//!   --squares-compare     compare batching microbenchmark
//!   --squares-rate        rate batching microbenchmark
//!   --squares-granularity rating granularity microbenchmark
//!   --fig6                tau/kappa vs ambiguity
//!   --fig7                hybrid convergence (40 squares)
//!   --fig7-animals        hybrid on animals Q2
//!   --table5              end-to-end query
//!   --costs               cost narrative arithmetic
//!   --optimizer           cost-based optimizer vs as-written plans
//!   --ablations           DESIGN.md Sec.5 design-choice ablations

use qurk_bench::{ablations, end_to_end, feature_exps, join_exps, opt_exps, sort_exps};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro [--all | --table1 --fig3 ...] (see --help in source)");
        std::process::exit(2);
    }
    let all = args.iter().any(|a| a == "--all");
    let has = |flag: &str| all || args.iter().any(|a| a == flag);

    let t0 = std::time::Instant::now();

    if has("--table1") {
        join_exps::table1().print();
    }
    if has("--fig3") {
        let (t, _) = join_exps::fig3();
        t.print();
    }
    if has("--fig4") {
        join_exps::fig4().print();
    }
    if has("--sec333") {
        let (t, _) = join_exps::assignments_vs_accuracy();
        t.print();
    }
    if has("--table2") || has("--table3") || has("--table4") {
        let (t2, trials) = feature_exps::table2();
        if has("--table2") {
            t2.print();
        }
        if has("--table3") {
            feature_exps::table3(&trials[0]).print();
        }
        if has("--table4") {
            feature_exps::table4(&trials).print();
        }
    }
    if has("--squares-compare") {
        sort_exps::squares_compare().print();
    }
    if has("--squares-rate") {
        sort_exps::squares_rate_batching().print();
    }
    if has("--squares-granularity") {
        sort_exps::rating_granularity().print();
    }
    if has("--fig6") {
        let (t, _) = sort_exps::fig6();
        t.print();
    }
    if has("--fig7") {
        let (t, _, _, _) = sort_exps::fig7(40);
        t.print();
    }
    if has("--fig7-animals") {
        sort_exps::fig7_animals().print();
    }
    if has("--table5") {
        end_to_end::table5().print();
    }
    if has("--costs") {
        end_to_end::costs().print();
    }
    if has("--optimizer") {
        opt_exps::comparison_table(&opt_exps::compare_workloads()).print();
    }
    if has("--ablations") {
        ablations::spam_sweep().print();
        ablations::aggregation_ablation().print();
        ablations::window_step_sweep().print();
        ablations::feature_selection_ablation().print();
        ablations::adaptive_votes_ablation().print();
        ablations::cache_ablation().print();
    }

    eprintln!("[repro] done in {:.1}s", t0.elapsed().as_secs_f64());
}
