//! Optimizer-vs-as-written comparison on the paper's workloads.
//!
//! For each workload (celebrity join §3.3, squares sort §4.2, movie
//! filters §5) the harness:
//!
//! 1. runs the query **as written** on a live simulated crowd — this
//!    is both the baseline and the statistics-learning run;
//! 2. re-runs the same query **cost-based** on a fresh same-seed
//!    crowd, seeded with the learned statistics, recording the
//!    spec→assignment trace (the compile-time estimate is captured
//!    from the same run's `QueryReport`);
//! 3. **replays** the cost-based run from its trace — deterministic
//!    "actuals" the cost model's estimates are validated against.
//!
//! `write_json` emits `BENCH_optimizer.json` with HITs/$/latency per
//! strategy for the CI artifact; the tests pin the acceptance
//! criteria: cost-based never costs more HITs than as-written, is
//! strictly cheaper on most workloads, and estimates land within 25%
//! of replayed actuals.

use qurk::prelude::*;
use qurk::{CostEstimate, RecordingBackend, ReplayTrace};
use qurk_crowd::truth::PredicateTruth;
use qurk_crowd::Marketplace;
use qurk_data::celebrity::{GENDER_OPTIONS, HAIR_OPTIONS};
use qurk_data::movie::{movie_dataset, MovieConfig};

use crate::report::Table;
use crate::world::{celebrity_world, squares_world, TrialSpec};

/// Measured resource numbers of one executed query (fractional after
/// trial averaging).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunNumbers {
    pub hits: f64,
    pub dollars: f64,
    pub latency_secs: f64,
}

impl From<&QueryReport> for RunNumbers {
    fn from(r: &QueryReport) -> Self {
        RunNumbers {
            hits: r.hits_posted as f64,
            dollars: r.cost_dollars,
            latency_secs: r.elapsed_secs,
        }
    }
}

fn avg_runs(runs: &[RunNumbers]) -> RunNumbers {
    let n = runs.len().max(1) as f64;
    RunNumbers {
        hits: runs.iter().map(|r| r.hits).sum::<f64>() / n,
        dollars: runs.iter().map(|r| r.dollars).sum::<f64>() / n,
        latency_secs: runs.iter().map(|r| r.latency_secs).sum::<f64>() / n,
    }
}

fn avg_estimates(ests: &[CostEstimate]) -> CostEstimate {
    let n = ests.len().max(1) as f64;
    let mut total = CostEstimate::ZERO;
    for e in ests {
        total += *e;
    }
    CostEstimate {
        hits: total.hits / n,
        rounds: total.rounds / n,
        assignments: total.assignments / n,
        dollars: total.dollars / n,
        latency_secs: total.latency_secs / n,
    }
}

/// One workload's optimizer-vs-as-written comparison.
#[derive(Debug, Clone)]
pub struct WorkloadComparison {
    pub workload: &'static str,
    /// Live as-written run (also the statistics-learning run).
    pub as_written: RunNumbers,
    /// Live cost-based run with the learned statistics.
    pub cost_based: RunNumbers,
    /// The cost model's estimate of the cost-based plan (computed
    /// from the learned statistics *before* execution).
    pub estimate: CostEstimate,
    /// The cost-based plan replayed from its recorded trace.
    pub replay_actual: RunNumbers,
    /// Optimizer decision log of the cost-based run.
    pub decisions: Vec<String>,
}

/// A workload: a catalog + SQL + a way to mint fresh same-seed crowds.
/// Crate-visible so the wall-clock suite can time the same workloads.
pub(crate) struct Workload {
    pub(crate) name: &'static str,
    pub(crate) catalog: Catalog,
    pub(crate) sql: String,
    pub(crate) make_market: Box<dyn Fn() -> Marketplace>,
}

/// Pass 1: run the query as written, returning its numbers and the
/// statistics the session learned.
pub(crate) fn learn(w: &Workload) -> (RunNumbers, StatisticsStore) {
    let mut aw_session = Session::builder()
        .catalog(&w.catalog)
        .backend((w.make_market)())
        .optimize(OptimizeMode::AsWritten)
        .build();
    let aw_report = aw_session.query(&w.sql).report().unwrap();
    let stats = aw_session.statistics().clone();
    ((&aw_report).into(), stats)
}

/// Passes 2–3: cost-based live run with `stats`, then replay it.
fn optimized(w: &Workload, as_written: RunNumbers, stats: &StatisticsStore) -> WorkloadComparison {
    // Pass 2: cost based on a fresh same-seed crowd, recording specs.
    let mut cb_session = Session::builder()
        .catalog(&w.catalog)
        .backend(RecordingBackend::new((w.make_market)()))
        .optimize(OptimizeMode::CostBased)
        .statistics(stats.clone())
        .build();
    // (the compile-time estimate below is produced from `stats`,
    // before any of this run's own observations exist)
    let cb_report = cb_session.query(&w.sql).report().unwrap();
    let trace: ReplayTrace = cb_session
        .backend_mut()
        .inner_mut()
        .inner_mut()
        .trace()
        .clone();

    // Pass 3: replay the cost-based plan — deterministic actuals.
    let mut replay_session = Session::builder()
        .catalog(&w.catalog)
        .backend(ReplayBackend::from_trace(trace))
        .optimize(OptimizeMode::CostBased)
        .statistics(stats.clone())
        .build();
    let replay_report = replay_session.query(&w.sql).report().unwrap();

    WorkloadComparison {
        workload: w.name,
        as_written,
        cost_based: (&cb_report).into(),
        estimate: cb_report.plan.estimate,
        replay_actual: (&replay_report).into(),
        decisions: cb_report.plan.decisions.clone(),
    }
}

// ------------------------------------------------------------ workloads

/// §3.3's celebrity join with two POSSIBLY feature filters, written
/// with the paper's default NaiveBatch join.
fn celebrity_workload(n: usize, seed: u64) -> Workload {
    let (_, ds) = celebrity_world(n, TrialSpec::morning(seed));
    let mut catalog = Catalog::new();
    let mut celeb = Relation::new(Schema::new(&[
        ("name", ValueType::Text),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in ds.celeb_items.iter().enumerate() {
        celeb
            .push(vec![
                Value::text(ds.celebrities[i].name.clone()),
                Value::Item(it),
            ])
            .unwrap();
    }
    let mut photos = Relation::new(Schema::new(&[
        ("pid", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in ds.photo_items.iter().enumerate() {
        photos
            .push(vec![Value::Int(i as i64), Value::Item(it)])
            .unwrap();
    }
    catalog.register_table("celeb", celeb);
    catalog.register_table("photos", photos);
    let gender_opts = GENDER_OPTIONS
        .iter()
        .map(|o| format!("\"{o}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let hair_opts = HAIR_OPTIONS
        .iter()
        .map(|o| format!("\"{o}\""))
        .collect::<Vec<_>>()
        .join(", ");
    catalog
        .define_tasks(&format!(
            r#"TASK samePerson(f1, f2) TYPE EquiJoin:
                Combiner: QualityAdjust
               TASK gender(field) TYPE Generative:
                Prompt: "<img src='%s'>?", tuple[field]
                Response: Radio("Gender", [{gender_opts}, UNKNOWN])
               TASK hairColor(field) TYPE Generative:
                Prompt: "<img src='%s'>?", tuple[field]
                Response: Radio("Hair", [{hair_opts}, UNKNOWN])
            "#
        ))
        .unwrap();
    Workload {
        name: "celebrity-join",
        catalog,
        sql: "SELECT c.name, p.pid FROM celeb c JOIN photos p \
              ON samePerson(c.img, p.img) \
              AND POSSIBLY gender(c.img) = gender(p.img) \
              AND POSSIBLY hairColor(c.img) = hairColor(p.img)"
            .into(),
        make_market: Box::new(move |/* fresh same-seed crowd */| {
            celebrity_world(n, TrialSpec::morning(seed)).0
        }),
    }
}

/// §4.2's squares sort, written with the default Compare sort.
fn squares_workload(n: usize, seed: u64) -> Workload {
    let (_, ds) = squares_world(n, TrialSpec::morning(seed));
    let mut catalog = Catalog::new();
    let mut squares = Relation::new(Schema::new(&[
        ("label", ValueType::Text),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in ds.items.iter().enumerate() {
        squares
            .push(vec![Value::text(ds.labels[i].clone()), Value::Item(it)])
            .unwrap();
    }
    catalog.register_table("squares", squares);
    catalog
        .define_tasks(
            r#"TASK sortSquares(field) TYPE Rank:
                SingularName: "square"
                PluralName: "squares"
                OrderDimensionName: "area"
                LeastName: "smallest"
                MostName: "largest"
                Html: "<img src='%s'>", tuple[field]
            "#,
        )
        .unwrap();
    Workload {
        name: "squares-sort",
        catalog,
        sql: "SELECT label FROM squares ORDER BY sortSquares(squares.img) DESC".into(),
        make_market: Box::new(move || squares_world(n, TrialSpec::morning(seed)).0),
    }
}

/// §5's movie query reduced to its filter stage: two crowd filters
/// written unselective-first — the ordering §2.5 admits Qurk gets
/// wrong without selectivity estimation.
fn movie_filters_workload(seed: u64) -> Workload {
    let build = move || {
        let mut truth = qurk_crowd::GroundTruth::new();
        let ds = movie_dataset(&mut truth, &MovieConfig::default());
        for scene in &ds.scenes {
            // Selective: exactly-one-person scenes (~28%).
            truth.set_predicate(
                scene.item,
                "soloScene",
                PredicateTruth {
                    value: scene.num_in_scene == 1,
                    error_rate: 0.03,
                },
            );
            // Unselective: daytime stills (~80% of the film).
            truth.set_predicate(
                scene.item,
                "daylight",
                PredicateTruth {
                    value: scene.second % 5 != 0,
                    error_rate: 0.03,
                },
            );
        }
        (
            Marketplace::new(&TrialSpec::morning(seed).crowd_config(), truth),
            ds,
        )
    };
    let (_, ds) = build();
    let mut catalog = Catalog::new();
    let mut scenes = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, scene) in ds.scenes.iter().enumerate() {
        scenes
            .push(vec![Value::Int(i as i64), Value::Item(scene.item)])
            .unwrap();
    }
    catalog.register_table("scenes", scenes);
    catalog
        .define_tasks(
            r#"TASK soloScene(field) TYPE Filter:
                Prompt: "<img src='%s'> Exactly one person?", tuple[field]
               TASK daylight(field) TYPE Filter:
                Prompt: "<img src='%s'> Daylight?", tuple[field]
            "#,
        )
        .unwrap();
    Workload {
        name: "movie-filters",
        catalog,
        sql: "SELECT s.id FROM scenes s WHERE daylight(s.img) AND soloScene(s.img)".into(),
        make_market: Box::new(move || build().0),
    }
}

/// Trials averaged per workload (the paper itself reports two trials
/// per experiment; the simulator's round latencies vary ±30% between
/// equivalent runs, and averaging is what makes a 25% estimate
/// criterion meaningful).
pub const DEFAULT_TRIALS: u64 = 5;

pub(crate) fn trial_workloads(seed: u64) -> [Workload; 3] {
    [
        celebrity_workload(15, seed),
        squares_workload(24, seed.wrapping_add(0x100)),
        movie_filters_workload(seed.wrapping_add(0x200)),
    ]
}

/// Run all three workloads, averaging [`DEFAULT_TRIALS`] seeded
/// trials per workload.
///
/// Learning happens first, across *all* trials and workloads, into
/// one shared statistics store: operator selectivities key by task
/// name (no cross-talk between workloads), while the latency round
/// observations pool — round overhead α and per-work-unit service β
/// are properties of the *marketplace*, not of any one query, and
/// pooling round sizes across workloads and trials is what makes the
/// α/β regression identifiable and stable. Every cost-based run is
/// then optimized against the same learned store, mirroring a
/// long-lived production session whose statistics accumulated over
/// many queries.
pub fn compare_workloads() -> Vec<WorkloadComparison> {
    let trials: Vec<[Workload; 3]> = (0..DEFAULT_TRIALS)
        .map(|t| trial_workloads(0x0071 + t * 0x1000))
        .collect();

    // Phase 1: as-written learning runs, pooled into one store.
    let mut shared = StatisticsStore::new();
    let mut as_written: Vec<[RunNumbers; 3]> = Vec::new();
    for tw in &trials {
        let mut aw_trial = [RunNumbers::default(); 3];
        for (wi, w) in tw.iter().enumerate() {
            let (aw, learned) = learn(w);
            shared.merge(&learned);
            aw_trial[wi] = aw;
        }
        as_written.push(aw_trial);
    }

    // Phase 2+3: cost-based runs with the pooled statistics, then
    // replay; averaged per workload across trials.
    (0..3)
        .map(|wi| {
            let per: Vec<WorkloadComparison> = trials
                .iter()
                .zip(&as_written)
                .map(|(tw, aw)| optimized(&tw[wi], aw[wi], &shared))
                .collect();
            WorkloadComparison {
                workload: per[0].workload,
                as_written: avg_runs(&per.iter().map(|c| c.as_written).collect::<Vec<_>>()),
                cost_based: avg_runs(&per.iter().map(|c| c.cost_based).collect::<Vec<_>>()),
                estimate: avg_estimates(&per.iter().map(|c| c.estimate).collect::<Vec<_>>()),
                replay_actual: avg_runs(&per.iter().map(|c| c.replay_actual).collect::<Vec<_>>()),
                decisions: per[0].decisions.clone(),
            }
        })
        .collect()
}

/// Render the comparison table.
pub fn comparison_table(results: &[WorkloadComparison]) -> Table {
    let mut t = Table::new(
        "Optimizer vs as-written (HITs / $ / latency; estimate vs replayed actual)",
        &[
            "Workload", "AW HITs", "CB HITs", "Est HITs", "AW $", "CB $", "Est $", "CB secs",
            "Est secs",
        ],
    );
    for r in results {
        t.row(vec![
            r.workload.into(),
            format!("{:.1}", r.as_written.hits),
            format!("{:.1}", r.cost_based.hits),
            format!("{:.1}", r.estimate.hits),
            format!("{:.2}", r.as_written.dollars),
            format!("{:.2}", r.cost_based.dollars),
            format!("{:.2}", r.estimate.dollars),
            format!("{:.0}", r.replay_actual.latency_secs),
            format!("{:.0}", r.estimate.latency_secs),
        ]);
    }
    t
}

/// Serialize the comparison to the `BENCH_optimizer.json` artifact
/// (hand-rolled JSON; the workspace is dependency-free by design).
pub fn to_json(results: &[WorkloadComparison]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn run(n: &RunNumbers) -> String {
        format!(
            "{{\"hits\": {:.1}, \"dollars\": {:.4}, \"latency_secs\": {:.1}}}",
            n.hits, n.dollars, n.latency_secs
        )
    }
    let mut out = String::from("{\n  \"benchmark\": \"optimizer-vs-as-written\",\n");
    out.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"workload\": \"{}\",\n", esc(r.workload)));
        out.push_str(&format!("      \"as_written\": {},\n", run(&r.as_written)));
        out.push_str(&format!("      \"cost_based\": {},\n", run(&r.cost_based)));
        out.push_str(&format!(
            "      \"estimate\": {{\"hits\": {:.1}, \"dollars\": {:.4}, \"latency_secs\": {:.1}}},\n",
            r.estimate.hits, r.estimate.dollars, r.estimate.latency_secs
        ));
        out.push_str(&format!(
            "      \"replay_actual\": {},\n",
            run(&r.replay_actual)
        ));
        out.push_str(&format!(
            "      \"decisions\": [{}]\n",
            r.decisions
                .iter()
                .map(|d| format!("\"{}\"", esc(d)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON artifact to `path`.
pub fn write_json(results: &[WorkloadComparison], path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_json(results))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(est: f64, actual: f64) -> f64 {
        if actual == 0.0 {
            if est == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (est - actual).abs() / actual
        }
    }

    /// The acceptance gate: the cost-based plan never costs more HITs
    /// than the as-written plan, is strictly cheaper on at least two
    /// workloads, and the cost model's estimates land within 25% of
    /// the replayed actuals for HITs, dollars and latency.
    #[test]
    fn cost_based_beats_as_written_and_estimates_track_actuals() {
        let results = compare_workloads();
        assert_eq!(results.len(), 3);
        let mut strictly_cheaper = 0;
        for r in &results {
            assert!(
                r.cost_based.hits <= r.as_written.hits,
                "{}: cost-based {:.1} HITs > as-written {:.1}",
                r.workload,
                r.cost_based.hits,
                r.as_written.hits
            );
            if r.cost_based.hits < r.as_written.hits {
                strictly_cheaper += 1;
                assert!(
                    !r.decisions.is_empty(),
                    "{}: a cheaper plan must come from recorded decisions",
                    r.workload
                );
            }
            let hits_err = rel_err(r.estimate.hits, r.replay_actual.hits);
            assert!(
                hits_err <= 0.25,
                "{}: HIT estimate off by {:.0}% ({:.1} est vs {:.1} actual)",
                r.workload,
                hits_err * 100.0,
                r.estimate.hits,
                r.replay_actual.hits
            );
            let dollar_err = rel_err(r.estimate.dollars, r.replay_actual.dollars);
            assert!(
                dollar_err <= 0.25,
                "{}: $ estimate off by {:.0}% ({:.2} est vs {:.2} actual)",
                r.workload,
                dollar_err * 100.0,
                r.estimate.dollars,
                r.replay_actual.dollars
            );
            let lat_err = rel_err(r.estimate.latency_secs, r.replay_actual.latency_secs);
            assert!(
                lat_err <= 0.25,
                "{}: latency estimate off by {:.0}% ({:.0}s est vs {:.0}s actual)",
                r.workload,
                lat_err * 100.0,
                r.estimate.latency_secs,
                r.replay_actual.latency_secs
            );
        }
        assert!(
            strictly_cheaper >= 2,
            "cost-based must be strictly cheaper on at least two workloads"
        );
    }

    #[test]
    fn json_artifact_is_well_formed() {
        let results = vec![WorkloadComparison {
            workload: "demo",
            as_written: RunNumbers {
                hits: 10.0,
                dollars: 0.75,
                latency_secs: 120.0,
            },
            cost_based: RunNumbers {
                hits: 5.0,
                dollars: 0.375,
                latency_secs: 60.0,
            },
            estimate: CostEstimate {
                hits: 5.0,
                rounds: 1.0,
                assignments: 25.0,
                dollars: 0.375,
                latency_secs: 55.0,
            },
            replay_actual: RunNumbers {
                hits: 5.0,
                dollars: 0.375,
                latency_secs: 61.0,
            },
            decisions: vec!["join strategy: \"upgraded\"".into()],
        }];
        let json = to_json(&results);
        assert!(json.contains("\"workload\": \"demo\""));
        assert!(json.contains("\\\"upgraded\\\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }
}
