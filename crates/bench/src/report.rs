//! Minimal table/series formatting for the reproduction reports.

/// A printable table with a title, column headers, and string cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a float with fixed decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format an optional float; `-` when absent.
pub fn fo(v: Option<f64>, decimals: usize) -> String {
    v.map(|x| f(x, decimals)).unwrap_or_else(|| "-".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_table() {
        let mut t = Table::new("T", &["a", "longer"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("== T =="));
        assert!(r.contains("a    longer"));
        assert!(r.contains("333  4"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(fo(None, 2), "-");
        assert_eq!(fo(Some(0.5), 1), "0.5");
    }
}
