//! Table 5: the end-to-end movie query, one row per operator
//! optimization, plus the §3.3.2/§3.4 cost-narrative arithmetic.

use std::collections::HashSet;

use qurk::ops::join::feature_filter::{FeatureFilter, FeatureFilterConfig, FeatureSpec};
use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::ops::sort::{CompareSort, RateSort};
use qurk_crowd::pricing::{query_cost, Price};
use qurk_data::movie::{MovieDataset, NUM_IN_SCENE, NUM_IN_SCENE_OPTIONS};

use crate::report::Table;
use crate::world::{movie_world, TrialSpec};

/// Extract `numInScene` on every scene (batch 5 ⇒ ⌈211/5⌉ = 43 HITs,
/// matching Table 5's "Filter 43" row; the §5.1 text says batch 4,
/// which would give 53 — see EXPERIMENTS.md) and return the indices of
/// scenes whose majority answer is "1".
fn run_scene_filter(
    market: &mut qurk_crowd::Marketplace,
    ds: &MovieDataset,
) -> (Vec<usize>, usize) {
    let ff = FeatureFilter::new(FeatureFilterConfig {
        batch_size: 5,
        combined_interface: false,
        ..Default::default()
    });
    let items: Vec<_> = ds.scenes.iter().map(|s| s.item).collect();
    let (extraction, hits) = ff
        .extract(
            market,
            &[FeatureSpec {
                name: NUM_IN_SCENE.into(),
                num_options: NUM_IN_SCENE_OPTIONS.len(),
            }],
            &items,
        )
        .unwrap();
    let solo_value = 1usize; // option index of "1"
    let passing: Vec<usize> = extraction
        .values
        .iter()
        .enumerate()
        .filter(|(_, row)| row[0] == Some(solo_value))
        .map(|(i, _)| i)
        .collect();
    (passing, hits)
}

/// Join actor headshots against the given scene subset; returns
/// (hits, matches as (actor_idx, scene_idx)).
fn run_join(
    market: &mut qurk_crowd::Marketplace,
    ds: &MovieDataset,
    scene_indices: &[usize],
    strategy: JoinStrategy,
) -> (usize, Vec<(usize, usize)>) {
    let scene_items: Vec<_> = scene_indices.iter().map(|&i| ds.scenes[i].item).collect();
    let op = JoinOp {
        strategy,
        combiner: qurk::task::CombinerKind::QualityAdjust,
        ..Default::default()
    };
    let out = op.run(market, &ds.actor_items, &scene_items, None).unwrap();
    let matches = out
        .matches
        .iter()
        .map(|&(a, s)| (a, scene_indices[s]))
        .collect();
    (out.hits_posted, matches)
}

/// The Table 5 reproduction. Every row is measured by actually running
/// the operators against a fresh marketplace over the same dataset.
pub fn table5() -> Table {
    let mut t = Table::new(
        "Table 5: end-to-end movie query, HITs per operator optimization",
        &["Operator", "Optimization", "# HITs"],
    );

    let fresh = |seed: u64| movie_world(TrialSpec::morning(seed));

    // Filter row.
    let (mut market, ds) = fresh(701);
    let (passing, filter_hits) = run_scene_filter(&mut market, &ds);
    t.row(vec![
        "Join".into(),
        "Filter".into(),
        filter_hits.to_string(),
    ]);

    // Filter + join variants. The filter output is recomputed per
    // variant on a fresh market so each row is independent, but the
    // dataset (and thus selectivity) is shared.
    let variants: Vec<(&str, JoinStrategy)> = vec![
        ("Filter + Simple", JoinStrategy::Simple),
        ("Filter + Naive", JoinStrategy::NaiveBatch(5)),
        (
            "Filter + Smart 3x3",
            JoinStrategy::SmartBatch { rows: 3, cols: 3 },
        ),
        (
            "Filter + Smart 5x5",
            JoinStrategy::SmartBatch { rows: 5, cols: 5 },
        ),
    ];
    let mut smart5_matches: Vec<(usize, usize)> = Vec::new();
    for (k, (label, strategy)) in variants.into_iter().enumerate() {
        let (mut market, ds) = fresh(710 + k as u64);
        let (passing_v, fh) = run_scene_filter(&mut market, &ds);
        let (jh, matches) = run_join(&mut market, &ds, &passing_v, strategy);
        if label.contains("5x5") {
            smart5_matches = matches;
        }
        t.row(vec!["Join".into(), label.into(), (fh + jh).to_string()]);
    }

    // No-filter variants over all 211 scenes.
    let all: Vec<usize> = (0..ds.scenes.len()).collect();
    for (k, (label, strategy)) in [
        ("No Filter + Simple", JoinStrategy::Simple),
        ("No Filter + Naive", JoinStrategy::NaiveBatch(5)),
        (
            "No Filter + Smart 5x5",
            JoinStrategy::SmartBatch { rows: 5, cols: 5 },
        ),
    ]
    .into_iter()
    .enumerate()
    {
        let (mut market, ds) = fresh(720 + k as u64);
        let (jh, _) = run_join(&mut market, &ds, &all, strategy);
        t.row(vec!["Join".into(), label.into(), jh.to_string()]);
    }

    // ORDER BY over the join result: per-actor scene groups.
    let mut by_actor: Vec<Vec<usize>> = vec![Vec::new(); ds.actor_items.len()];
    for &(a, s) in &smart5_matches {
        by_actor[a].push(s);
    }
    // Compare (group size 5).
    let (mut market, ds2) = fresh(730);
    let mut compare_hits = 0;
    for group in &by_actor {
        if group.len() < 2 {
            continue;
        }
        let items: Vec<_> = group.iter().map(|&s| ds2.scenes[s].item).collect();
        let out = CompareSort::default()
            .run(&mut market, &items, qurk_data::movie::QUALITY)
            .unwrap();
        compare_hits += out.hits_posted;
    }
    t.row(vec![
        "Order By".into(),
        "Compare".into(),
        compare_hits.to_string(),
    ]);
    // Rate (batch 5).
    let (mut market, ds3) = fresh(731);
    let mut rate_hits = 0;
    for group in &by_actor {
        if group.is_empty() {
            continue;
        }
        let items: Vec<_> = group.iter().map(|&s| ds3.scenes[s].item).collect();
        let out = RateSort::default()
            .run(&mut market, &items, qurk_data::movie::QUALITY)
            .unwrap();
        rate_hits += out.hits_posted;
    }
    t.row(vec![
        "Order By".into(),
        "Rate".into(),
        rate_hits.to_string(),
    ]);

    // Totals: unoptimized = No Filter + Simple join, Compare sort;
    // optimized = Filter + Smart 5x5, Rate sort.
    let unopt_join: usize = {
        let (mut market, ds) = fresh(740);
        let all: Vec<usize> = (0..ds.scenes.len()).collect();
        run_join(&mut market, &ds, &all, JoinStrategy::Simple).0
    };
    let opt_join: usize = {
        let (mut market, ds) = fresh(741);
        let (p, fh) = run_scene_filter(&mut market, &ds);
        fh + run_join(
            &mut market,
            &ds,
            &p,
            JoinStrategy::SmartBatch { rows: 5, cols: 5 },
        )
        .0
    };
    let unopt = unopt_join + compare_hits;
    let opt = opt_join + rate_hits;
    t.row(vec![
        "Total".into(),
        "unoptimized".into(),
        format!("{unopt_join} + {compare_hits} = {unopt}"),
    ]);
    t.row(vec![
        "Total".into(),
        "optimized".into(),
        format!("{opt_join} + {rate_hits} = {opt}"),
    ]);
    t.row(vec![
        "Reduction".into(),
        "".into(),
        format!("{:.1}x", unopt as f64 / opt as f64),
    ]);
    let _ = passing;
    let _: HashSet<usize> = HashSet::new();
    t
}

/// The paper's cost narrative (§3.3.2, §3.4): fixed-price arithmetic
/// the system's objective function is built on.
pub fn costs() -> Table {
    let mut t = Table::new(
        "Cost narrative (fixed $0.01 + $0.005 per assignment)",
        &["Configuration", "HIT-equivalents", "Cost"],
    );
    let p = Price::PAPER;
    let naive10 = query_cost(900, 10, p);
    t.row(vec![
        "30x30 join, unbatched, 10 assignments".into(),
        "900 x 10".into(),
        format!("${naive10:.2}"),
    ]);
    let naive5 = query_cost(900, 5, p);
    t.row(vec![
        "30x30 join, unbatched, 5 assignments".into(),
        "900 x 5".into(),
        format!("${naive5:.2}"),
    ]);
    let filtered = query_cost(308 + 60, 5, p);
    t.row(vec![
        "with feature filtering (~308 pairs + 60 extractions)".into(),
        "368 x 5".into(),
        format!("${filtered:.2}"),
    ]);
    let batched = query_cost(31 + 6, 5, p);
    t.row(vec![
        "filtering + batching 10 (31 join HITs + 6 extraction)".into(),
        "37 x 5".into(),
        format!("${batched:.2}"),
    ]);
    t.row(vec![
        "reduction".into(),
        "".into(),
        format!("{:.0}x", naive10 / batched),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_posts_43_hits_and_passes_about_half() {
        let (mut market, ds) = movie_world(TrialSpec::morning(1));
        let (passing, hits) = run_scene_filter(&mut market, &ds);
        assert_eq!(hits, 43); // ceil(211 / 5)
        let frac = passing.len() as f64 / ds.scenes.len() as f64;
        assert!((0.45..=0.65).contains(&frac), "selectivity={frac}");
    }

    #[test]
    fn filter_keeps_true_solo_scenes() {
        let (mut market, ds) = movie_world(TrialSpec::morning(2));
        let (passing, _) = run_scene_filter(&mut market, &ds);
        let truly_solo: HashSet<usize> = ds
            .scenes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.num_in_scene == 1)
            .map(|(i, _)| i)
            .collect();
        let kept: HashSet<usize> = passing.iter().copied().collect();
        let overlap = truly_solo.intersection(&kept).count();
        // numInScene was "very accurate" (§5.2).
        assert!(
            overlap as f64 >= 0.95 * truly_solo.len() as f64,
            "overlap {overlap}/{}",
            truly_solo.len()
        );
    }

    #[test]
    fn smart_join_finds_most_scene_matches() {
        let (mut market, ds) = movie_world(TrialSpec::morning(3));
        let (passing, _) = run_scene_filter(&mut market, &ds);
        let (_, matches) = run_join(
            &mut market,
            &ds,
            &passing,
            JoinStrategy::SmartBatch { rows: 5, cols: 5 },
        );
        let truth: HashSet<(usize, usize)> = ds
            .scenes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.featured_actor.map(|a| (a, i)))
            .collect();
        let found: HashSet<(usize, usize)> = matches.iter().copied().collect();
        let tp = truth.intersection(&found).count();
        assert!(
            tp as f64 > 0.7 * truth.len() as f64,
            "tp={tp}/{}",
            truth.len()
        );
    }
}
