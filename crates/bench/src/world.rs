//! Shared experiment worlds: dataset + marketplace builders.

use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};
use qurk_data::animals::{animals_dataset, AnimalsDataset};
use qurk_data::celebrity::{celebrity_dataset, CelebrityConfig, CelebrityDataset};
use qurk_data::movie::{movie_dataset, MovieConfig, MovieDataset};
use qurk_data::squares::{squares_dataset, SquaresDataset};

/// The paper runs each join experiment twice ("Trial #1 and #2", one
/// morning and one evening) with 5 assignments each and aggregates to
/// 10 votes per pair. `TrialSpec` captures that protocol.
#[derive(Debug, Clone, Copy)]
pub struct TrialSpec {
    pub seed: u64,
    /// Virtual start hour (9.0 = morning, 19.0 = evening).
    pub start_hour: f64,
    pub assignments: u32,
}

impl TrialSpec {
    pub fn morning(seed: u64) -> Self {
        TrialSpec {
            seed,
            start_hour: 9.0,
            assignments: 5,
        }
    }

    pub fn evening(seed: u64) -> Self {
        TrialSpec {
            seed,
            start_hour: 19.0,
            assignments: 5,
        }
    }

    pub fn crowd_config(&self) -> CrowdConfig {
        let mut cfg = CrowdConfig::default()
            .with_seed(self.seed)
            .with_assignments(self.assignments);
        cfg.sim.start_hour = self.start_hour;
        cfg
    }
}

/// Celebrity-join world: `n` celebrities, two tables, fixed dataset
/// seed (the *dataset* is identical across trials; only the crowd
/// varies).
pub fn celebrity_world(n: usize, trial: TrialSpec) -> (Marketplace, CelebrityDataset) {
    let mut truth = GroundTruth::new();
    let ds = celebrity_dataset(
        &mut truth,
        &CelebrityConfig::default()
            .with_celebrities(n)
            .with_seed(0xDA7A),
    );
    (Marketplace::new(&trial.crowd_config(), truth), ds)
}

/// Squares world of `n` squares.
pub fn squares_world(n: usize, trial: TrialSpec) -> (Marketplace, SquaresDataset) {
    let mut truth = GroundTruth::new();
    let ds = squares_dataset(&mut truth, n);
    (Marketplace::new(&trial.crowd_config(), truth), ds)
}

/// Animals world (27 fixed items).
pub fn animals_world(trial: TrialSpec) -> (Marketplace, AnimalsDataset) {
    let mut truth = GroundTruth::new();
    let ds = animals_dataset(&mut truth);
    (Marketplace::new(&trial.crowd_config(), truth), ds)
}

/// Movie world (211 scenes, 5 actors).
pub fn movie_world(trial: TrialSpec) -> (Marketplace, MovieDataset) {
    let mut truth = GroundTruth::new();
    let ds = movie_dataset(&mut truth, &MovieConfig::default());
    (Marketplace::new(&trial.crowd_config(), truth), ds)
}

/// Is (celeb_idx, photo_idx) a true match in the celebrity world?
pub fn is_true_match(ds: &CelebrityDataset, celeb_idx: usize, photo_idx: usize) -> bool {
    ds.photo_owner[photo_idx] == celeb_idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_build() {
        let (m, ds) = celebrity_world(5, TrialSpec::morning(1));
        assert_eq!(ds.len(), 5);
        assert_eq!(m.hits_posted(), 0);
        let (_, sq) = squares_world(10, TrialSpec::morning(1));
        assert_eq!(sq.len(), 10);
        let (_, an) = animals_world(TrialSpec::evening(2));
        assert_eq!(an.len(), 27);
        let (_, mv) = movie_world(TrialSpec::morning(3));
        assert_eq!(mv.scenes.len(), 211);
    }

    #[test]
    fn dataset_is_stable_across_trials() {
        let (_, a) = celebrity_world(10, TrialSpec::morning(1));
        let (_, b) = celebrity_world(10, TrialSpec::evening(99));
        assert_eq!(a.photo_owner, b.photo_owner);
    }

    #[test]
    fn true_match_uses_owner() {
        let (_, ds) = celebrity_world(4, TrialSpec::morning(1));
        for j in 0..4 {
            assert!(is_true_match(&ds, ds.photo_owner[j], j));
        }
    }
}
