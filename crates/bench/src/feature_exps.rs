//! Feature-filtering experiments: Tables 2, 3 and 4 (§3.3.4).
//!
//! Protocol: 30 celebrities (60 images across the two tables); for
//! each feature two trials with 5 votes per image, run once through
//! the combined all-features interface and once through separate
//! single-feature interfaces. Majority vote combines votes; candidates
//! must agree on every applied feature (UNKNOWN matches anything).
//!
//! Cost model (§3.3.2/§3.3.4): every HIT costs $0.015 per assignment ×
//! 5 assignments; extraction HITs ask one image each (one feature per
//! HIT separate, all three combined), and the join then evaluates the
//! pairs that passed filtering: the paper's "$67.50 without filters"
//! baseline is 900 pairs × 5 × $0.015.

use qurk::ops::join::feature_filter::{
    Extraction, FeatureFilter, FeatureFilterConfig, FeatureSpec,
};
use qurk_crowd::Marketplace;
use qurk_data::celebrity::{CelebrityDataset, GENDER, HAIR, SKIN};
use qurk_metrics::kappa::{counts_from_labels, fleiss_kappa};
use qurk_metrics::{mean, sample_std};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{f, Table};
use crate::world::{celebrity_world, is_true_match, TrialSpec};

pub const N_CELEBS: usize = 30;
const PRICE_PER_HIT: f64 = 5.0 * 0.015; // 5 assignments x $0.015

/// The three paper features.
pub fn feature_specs() -> Vec<FeatureSpec> {
    vec![
        FeatureSpec {
            name: GENDER.into(),
            num_options: 2,
        },
        FeatureSpec {
            name: HAIR.into(),
            num_options: 4,
        },
        FeatureSpec {
            name: SKIN.into(),
            num_options: 3,
        },
    ]
}

/// One extraction trial over both tables.
pub struct FeatureTrial {
    pub combined: bool,
    pub trial_no: usize,
    pub left: Extraction,
    pub right: Extraction,
    pub extraction_hits: usize,
    pub ds: CelebrityDataset,
}

/// Run one extraction trial.
pub fn run_trial(trial_no: usize, combined: bool, seed: u64) -> FeatureTrial {
    let spec = if trial_no == 1 {
        TrialSpec::morning(seed)
    } else {
        TrialSpec::evening(seed)
    };
    let (mut market, ds): (Marketplace, CelebrityDataset) = celebrity_world(N_CELEBS, spec);
    let ff = FeatureFilter::new(FeatureFilterConfig {
        batch_size: 1, // one image per HIT, as priced in the paper
        combined_interface: combined,
        ..Default::default()
    });
    let (left, h1) = ff
        .extract(&mut market, &feature_specs(), &ds.celeb_items)
        .unwrap();
    let (right, h2) = ff
        .extract(&mut market, &feature_specs(), &ds.photo_items)
        .unwrap();
    FeatureTrial {
        combined,
        trial_no,
        left,
        right,
        extraction_hits: h1 + h2,
        ds,
    }
}

/// Errors (true matches filtered away) and saved comparisons
/// (non-matching pairs filtered away) under the given feature subset.
pub fn filter_effect(trial: &FeatureTrial, applied: &[usize]) -> (usize, usize) {
    let candidates = FeatureFilter::candidates(applied, &trial.left, &trial.right);
    let n = trial.ds.len();
    let mut errors = 0;
    let mut saved = 0;
    for i in 0..n {
        for j in 0..n {
            let passes = candidates.contains(&(i, j));
            if is_true_match(&trial.ds, i, j) {
                errors += usize::from(!passes);
            } else {
                saved += usize::from(!passes);
            }
        }
    }
    (errors, saved)
}

/// Join cost in dollars for the pairs that pass `applied`, including
/// the extraction HITs actually spent in this trial.
pub fn join_cost(trial: &FeatureTrial, applied: &[usize]) -> f64 {
    let (errors, saved) = filter_effect(trial, applied);
    let n = trial.ds.len();
    let passing = n * n - saved - errors;
    passing as f64 * PRICE_PER_HIT + trial.extraction_hits as f64 * PRICE_PER_HIT
}

/// Table 2: all three filters applied, 4 trials (2 × combined Y/N).
pub fn table2() -> (Table, Vec<FeatureTrial>) {
    let mut t = Table::new(
        "Table 2: feature filtering effectiveness (30 celebrities, 870 non-matching pairs)",
        &[
            "Trial",
            "Combined?",
            "Errors",
            "Saved comparisons",
            "Join cost",
        ],
    );
    let mut trials = Vec::new();
    for (trial_no, combined, seed) in [
        (1, true, 501),
        (2, true, 502),
        (1, false, 503),
        (2, false, 504),
    ] {
        let trial = run_trial(trial_no, combined, seed);
        let (errors, saved) = filter_effect(&trial, &[0, 1, 2]);
        let cost = join_cost(&trial, &[0, 1, 2]);
        t.row(vec![
            trial_no.to_string(),
            if combined { "Y" } else { "N" }.into(),
            errors.to_string(),
            saved.to_string(),
            format!("${cost:.2}"),
        ]);
        trials.push(trial);
    }
    (t, trials)
}

/// Table 3: leave-one-out analysis on the first combined trial.
pub fn table3(trial: &FeatureTrial) -> Table {
    let mut t = Table::new(
        "Table 3: leave-one-out analysis (first combined trial)",
        &[
            "Omitted feature",
            "Errors",
            "Saved comparisons",
            "Join cost",
        ],
    );
    let names = ["Gender", "Hair Color", "Skin Color"];
    for (omit, name) in names.iter().enumerate() {
        let applied: Vec<usize> = (0..3).filter(|&x| x != omit).collect();
        let (errors, saved) = filter_effect(trial, &applied);
        let cost = join_cost(trial, &applied);
        t.row(vec![
            (*name).into(),
            errors.to_string(),
            saved.to_string(),
            format!("${cost:.2}"),
        ]);
    }
    t
}

/// κ over a subset of celebrity indices (both photos of each sampled
/// celebrity, pooled across tables). UNKNOWN participates as its own
/// category.
pub fn kappa_on_sample(
    trial: &FeatureTrial,
    feature_idx: usize,
    num_options: usize,
    celeb_subset: &[usize],
) -> f64 {
    let mut labels: Vec<Vec<usize>> = Vec::new();
    for &c in celeb_subset {
        labels.push(trial.left.votes[c][feature_idx].clone());
        // photo_items are shuffled; find the photo of celebrity c.
        let photo_idx = trial.ds.photo_owner.iter().position(|&o| o == c).unwrap();
        labels.push(trial.right.votes[photo_idx][feature_idx].clone());
    }
    let counts = counts_from_labels(&labels, num_options + 1);
    fleiss_kappa(&counts).unwrap_or(0.0)
}

/// Table 4: κ per feature, full data and 50 random 25% samples.
pub fn table4(trials: &[FeatureTrial]) -> Table {
    let mut t = Table::new(
        "Table 4: inter-rater agreement (kappa) for features",
        &[
            "Trial",
            "Sample",
            "Combined?",
            "Gender k (std)",
            "Hair k (std)",
            "Skin k (std)",
        ],
    );
    let specs = feature_specs();
    let all: Vec<usize> = (0..N_CELEBS).collect();
    for trial in trials {
        // Full-data row.
        let full: Vec<f64> = (0..3)
            .map(|fi| kappa_on_sample(trial, fi, specs[fi].num_options, &all))
            .collect();
        t.row(vec![
            trial.trial_no.to_string(),
            "100%".into(),
            if trial.combined { "Y" } else { "N" }.into(),
            f(full[0], 2),
            f(full[1], 2),
            f(full[2], 2),
        ]);
    }
    for trial in trials {
        // 50 random 25% samples.
        let mut rng = StdRng::seed_from_u64(0x5A_0000 + trial.trial_no as u64);
        let k = (N_CELEBS as f64 * 0.25).round() as usize;
        let mut per_feature: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for _ in 0..50 {
            let subset = qurk_crowd::rng::sample_distinct(&mut rng, N_CELEBS, k);
            for fi in 0..3 {
                per_feature[fi].push(kappa_on_sample(trial, fi, specs[fi].num_options, &subset));
            }
        }
        let cell = |fi: usize| {
            format!(
                "{:.2} ({:.2})",
                mean(&per_feature[fi]).unwrap_or(0.0),
                sample_std(&per_feature[fi]).unwrap_or(0.0)
            )
        };
        t.row(vec![
            trial.trial_no.to_string(),
            "25%".into(),
            if trial.combined { "Y" } else { "N" }.into(),
            cell(0),
            cell(1),
            cell(2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trial(combined: bool) -> FeatureTrial {
        // Use the full N_CELEBS world (the dataset seed is shared with
        // the experiment) but this is slow-ish; fine for a unit test.
        run_trial(1, combined, 42)
    }

    #[test]
    fn extraction_covers_all_images() {
        let t = small_trial(true);
        assert_eq!(t.left.values.len(), N_CELEBS);
        assert_eq!(t.right.values.len(), N_CELEBS);
        // Combined interface: one HIT per image.
        assert_eq!(t.extraction_hits, 2 * N_CELEBS);
    }

    #[test]
    fn separate_interface_costs_three_times_the_hits() {
        let t = small_trial(false);
        assert_eq!(t.extraction_hits, 2 * N_CELEBS * 3);
    }

    #[test]
    fn filters_save_many_comparisons_with_few_errors() {
        let t = small_trial(true);
        let (errors, saved) = filter_effect(&t, &[0, 1, 2]);
        assert!(errors <= 8, "errors={errors}");
        assert!(
            (400..=820).contains(&saved),
            "saved={saved} (expect paper-like 550-700)"
        );
    }

    #[test]
    fn gender_is_strongest_filter() {
        let t = small_trial(true);
        let (_, saved_no_gender) = filter_effect(&t, &[1, 2]);
        let (_, saved_no_hair) = filter_effect(&t, &[0, 2]);
        let (_, saved_no_skin) = filter_effect(&t, &[0, 1]);
        // Omitting gender hurts the most (paper Table 3).
        assert!(saved_no_gender < saved_no_hair);
        assert!(saved_no_gender < saved_no_skin);
    }

    #[test]
    fn hair_causes_the_errors() {
        let t = small_trial(true);
        let (errors_all, _) = filter_effect(&t, &[0, 1, 2]);
        let (errors_no_hair, _) = filter_effect(&t, &[0, 2]);
        assert!(errors_no_hair <= errors_all);
    }

    #[test]
    fn kappa_ordering_matches_paper() {
        let t = small_trial(true);
        let all: Vec<usize> = (0..N_CELEBS).collect();
        let g = kappa_on_sample(&t, 0, 2, &all);
        let h = kappa_on_sample(&t, 1, 4, &all);
        assert!(g > 0.7, "gender kappa={g}");
        assert!(h < g, "hair {h} should be below gender {g}");
    }
}
