//! Ablation studies for the design choices DESIGN.md §5 calls out:
//!
//! * MajorityVote vs QualityAdjust under a spammer-fraction sweep
//!   (what drives Figure 3's gap);
//! * head-to-head aggregation vs a naive comparator sort under
//!   intransitive votes (§4.1.1's motivation);
//! * the sliding-window divisor effect (Window 5 vs 6, generalized);
//! * adaptive vote collection vs the fixed-5 default (§6);
//! * the task cache's effect on repeated queries.

use qurk::adaptive::AdaptiveVotes;
use qurk::backend::CrowdBackend;
use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::ops::sort::{CompareSort, HybridSort, HybridStrategy};
use qurk::task::CombinerKind;
use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};
use qurk_data::animals::{animals_dataset, SATURN};
use qurk_data::celebrity::{celebrity_dataset, CelebrityConfig};
use qurk_data::squares::AREA;
use qurk_metrics::tau_between_orders;

use crate::report::{f, Table};
use crate::world::{squares_world, TrialSpec};

/// MV vs QA true-positive rate as the spammer fraction rises
/// (Smart 3×3 join, 15 celebrities).
pub fn spam_sweep() -> Table {
    let mut t = Table::new(
        "Ablation: combiner robustness vs spammer fraction (Smart 3x3 join, 15 celebs)",
        &["Spam fraction", "TP (MV)", "TP (QA)", "FP (MV)", "FP (QA)"],
    );
    for (k, spam) in [0.0f64, 0.10, 0.25, 0.40].into_iter().enumerate() {
        let run = |combiner: CombinerKind| {
            let mut gt = GroundTruth::new();
            let ds = celebrity_dataset(&mut gt, &CelebrityConfig::default().with_celebrities(15));
            let mut cfg = CrowdConfig::default().with_seed(801 + k as u64);
            cfg.workers.spammer_fraction = spam;
            let mut market = Marketplace::new(&cfg, gt);
            let out = JoinOp {
                strategy: JoinStrategy::SmartBatch { rows: 3, cols: 3 },
                combiner,
                ..Default::default()
            }
            .run(&mut market, &ds.celeb_items, &ds.photo_items, None)
            .unwrap();
            let tp = out
                .matches
                .iter()
                .filter(|&&(i, j)| ds.photo_owner[j] == i)
                .count();
            let fp = out.matches.len() - tp;
            (tp, fp)
        };
        let (tp_mv, fp_mv) = run(CombinerKind::MajorityVote);
        let (tp_qa, fp_qa) = run(CombinerKind::QualityAdjust);
        t.row(vec![
            format!("{:.0}%", spam * 100.0),
            format!("{tp_mv}/15"),
            format!("{tp_qa}/15"),
            fp_mv.to_string(),
            fp_qa.to_string(),
        ]);
    }
    t
}

/// Head-to-head vs a naive comparator sort (`sort_by` over majority
/// edges) on an ambiguous dimension where majority votes contain
/// cycles. The naive sort's output depends on unexamined pairs; the
/// head-to-head score is total and stable (§4.1.1).
pub fn aggregation_ablation() -> Table {
    let mut t = Table::new(
        "Ablation: head-to-head vs naive comparator sort (animals/Saturn)",
        &["Run", "cycles?", "tau (head-to-head)", "tau (naive sort)"],
    );
    for seed in [811u64, 812, 813] {
        let mut gt = GroundTruth::new();
        let ds = animals_dataset(&mut gt);
        let truth_order = gt.true_order(&ds.items, SATURN);
        let mut market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);
        let out = CompareSort::default()
            .run(&mut market, &ds.items, SATURN)
            .unwrap();
        let tau_h2h = tau_between_orders(&out.order, &truth_order).unwrap();

        // Naive: comparator sort over majority edges (what a Quicksort
        // implementation would do). With cycles this comparator is not
        // a total order — `slice::sort_by` *panics* on it ("user-provided
        // comparison function does not correctly implement a total
        // order"), which is precisely §4.1.1's warning about O(N log N)
        // sorts on crowd votes. Insertion sort tolerates the
        // inconsistency but produces order-dependent results.
        let mut naive: Vec<usize> = (0..ds.items.len()).collect();
        for i in 1..naive.len() {
            let mut j = i;
            while j > 0 {
                let (wa, wb) = out.tally.votes(naive[j], naive[j - 1]);
                if wa > wb {
                    naive.swap(j, j - 1);
                    j -= 1;
                } else {
                    break;
                }
            }
        }
        let naive_items: Vec<_> = naive.iter().map(|&i| ds.items[i]).collect();
        let tau_naive = tau_between_orders(&naive_items, &truth_order).unwrap();

        t.row(vec![
            format!("seed {seed}"),
            if out.tally.has_cycles() { "yes" } else { "no" }.into(),
            f(tau_h2h, 3),
            f(tau_naive, 3),
        ]);
    }
    t
}

/// Sliding-window step sweep: how the divisor relationship between
/// `t` and N drives hybrid convergence (generalizes Window 5 vs 6).
pub fn window_step_sweep() -> Table {
    let mut t = Table::new(
        "Ablation: hybrid sliding-window step t on 40 squares (30 extra HITs)",
        &["t", "divides 40?", "tau@10", "tau@30"],
    );
    for (k, step) in [4usize, 5, 6, 8, 13].into_iter().enumerate() {
        let (mut market, ds) = squares_world(40, TrialSpec::morning(821 + k as u64));
        let truth_order = ds.true_order_desc();
        let out = HybridSort {
            strategy: HybridStrategy::Window { t: step },
            ..Default::default()
        }
        .run(&mut market, &ds.items, AREA, 30)
        .unwrap();
        let tau_at =
            |k: usize| tau_between_orders(&out.trajectory[k - 1], &truth_order).unwrap_or(0.0);
        t.row(vec![
            step.to_string(),
            if 40 % step == 0 { "yes" } else { "no" }.into(),
            f(tau_at(10), 3),
            f(tau_at(30), 3),
        ]);
    }
    t
}

/// Feature auto-selection (§3.2's κ test) vs applying every POSSIBLY
/// filter blindly. With a κ threshold of 0.5 the ambiguous hair filter
/// is dropped — which is exactly what the paper's Table 3/4 analysis
/// recommends ("hair color should potentially be left out") — trading
/// a few saved comparisons for fewer lost matches.
pub fn feature_selection_ablation() -> Table {
    use qurk::ops::join::feature_filter::{FeatureFilter, FeatureFilterConfig, FeatureSpec};
    use qurk_data::celebrity::{GENDER, HAIR, SKIN};

    let mut t = Table::new(
        "Ablation: kappa-based feature selection vs all filters (30 celebs)",
        &["Policy", "Filters used", "Errors", "Saved"],
    );
    let specs = vec![
        FeatureSpec {
            name: GENDER.into(),
            num_options: 2,
        },
        FeatureSpec {
            name: HAIR.into(),
            num_options: 4,
        },
        FeatureSpec {
            name: SKIN.into(),
            num_options: 3,
        },
    ];
    for (label, kappa_threshold) in [("all filters", 0.0), ("kappa >= 0.5", 0.5)] {
        let mut gt = GroundTruth::new();
        let ds = celebrity_dataset(&mut gt, &CelebrityConfig::default().with_celebrities(30));
        let mut market = Marketplace::new(&CrowdConfig::default().with_seed(853), gt);
        // Half the table per side: the paper's 25% sample is 8 items
        // here, too few for a stable kappa estimate near the threshold.
        let ff = FeatureFilter::new(FeatureFilterConfig {
            kappa_threshold,
            sample_fraction: 0.5,
            ..Default::default()
        });
        let out = ff
            .run(&mut market, &specs, &ds.celeb_items, &ds.photo_items)
            .unwrap();
        let mut errors = 0;
        let mut saved = 0;
        for i in 0..30 {
            for j in 0..30 {
                let pass = out.candidates.contains(&(i, j));
                if ds.photo_owner[j] == i {
                    errors += usize::from(!pass);
                } else {
                    saved += usize::from(!pass);
                }
            }
        }
        let used: Vec<&str> = out
            .selected
            .iter()
            .map(|&fi| specs[fi].name.as_str())
            .collect();
        t.row(vec![
            label.into(),
            used.join("+"),
            errors.to_string(),
            saved.to_string(),
        ]);
    }
    t
}

/// Adaptive vote collection (§6) vs the fixed-5 default on a filter
/// workload: assignments spent and accuracy.
pub fn adaptive_votes_ablation() -> Table {
    let mut t = Table::new(
        "Ablation: adaptive vote collection vs fixed 5 votes (60-item filter)",
        &["Scheme", "Assignments", "Accuracy"],
    );
    let build = |seed: u64| {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(60);
        for (i, &it) in items.iter().enumerate() {
            gt.set_predicate(
                it,
                "p",
                qurk_crowd::truth::PredicateTruth {
                    value: i % 2 == 0,
                    error_rate: 0.06,
                },
            );
        }
        (
            Marketplace::new(&CrowdConfig::default().with_seed(seed), gt),
            items,
        )
    };

    // Fixed 5 votes.
    {
        let (mut market, items) = build(831);
        let op = qurk::ops::filter::FilterOp {
            batch_size: 1,
            ..Default::default()
        };
        let out = op.run(&mut market, "p", &items).unwrap();
        let acc = out
            .iter()
            .enumerate()
            .filter(|(i, &b)| b == (i % 2 == 0))
            .count() as f64
            / 60.0;
        t.row(vec![
            "fixed 5".into(),
            market.ledger.assignments_paid.to_string(),
            f(acc, 3),
        ]);
    }
    // Adaptive (min 3, margin 2, max 9).
    {
        let (mut market, items) = build(832);
        let out = AdaptiveVotes::default()
            .run_filter(&mut market, "p", &items)
            .unwrap();
        let acc = out
            .decisions
            .iter()
            .enumerate()
            .filter(|(i, &b)| b == (i % 2 == 0))
            .count() as f64
            / 60.0;
        t.row(vec![
            "adaptive 3..9".into(),
            market.ledger.assignments_paid.to_string(),
            f(acc, 3),
        ]);
    }
    t
}

/// Task-cache effect: the same filter query twice.
pub fn cache_ablation() -> Table {
    let mut t = Table::new(
        "Ablation: task cache on repeated work (40-item filter, batch 5)",
        &["Run", "HITs posted", "Cache hits"],
    );
    let mut gt = GroundTruth::new();
    let items = gt.new_items(40);
    for (i, &it) in items.iter().enumerate() {
        gt.set_predicate(
            it,
            "p",
            qurk_crowd::truth::PredicateTruth {
                value: i % 3 == 0,
                error_rate: 0.05,
            },
        );
    }
    let market = Marketplace::new(&CrowdConfig::default().with_seed(841), gt);
    // The task cache now lives at the backend boundary.
    let mut backend = qurk::CachingBackend::new(market);
    let op = qurk::ops::filter::FilterOp::default();
    for run in 1..=2 {
        let before = backend.hits_posted();
        op.run(&mut backend, "p", &items).unwrap();
        let (hits, _) = backend.stats();
        t.row(vec![
            run.to_string(),
            (backend.hits_posted() - before).to_string(),
            hits.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spam_sweep_shows_qa_advantage_at_high_spam() {
        let t = spam_sweep();
        // At the 40% row, QA's TP must be >= MV's.
        let last = t.rows.last().unwrap();
        let mv: usize = last[1].split('/').next().unwrap().parse().unwrap();
        let qa: usize = last[2].split('/').next().unwrap().parse().unwrap();
        assert!(qa >= mv, "QA {qa} vs MV {mv} at 40% spam");
    }

    #[test]
    fn head_to_head_never_loses_to_naive() {
        let t = aggregation_ablation();
        for row in &t.rows {
            let h2h: f64 = row[2].parse().unwrap();
            let naive: f64 = row[3].parse().unwrap();
            assert!(h2h >= naive - 0.05, "h2h {h2h} vs naive {naive}");
        }
    }

    #[test]
    fn divisor_steps_underperform() {
        let t = window_step_sweep();
        // Compare tau@30 of a divisor step (5) against a non-divisor (6).
        let tau = |step: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == step)
                .map(|r| r[3].parse().unwrap())
                .unwrap()
        };
        assert!(tau("6") >= tau("5"), "t=6 {} vs t=5 {}", tau("6"), tau("5"));
    }

    #[test]
    fn kappa_selection_drops_hair_and_reduces_errors() {
        let t = feature_selection_ablation();
        let all = &t.rows[0];
        let selected = &t.rows[1];
        // The kappa policy drops at least one filter...
        assert!(selected[1].len() < all[1].len(), "{selected:?}");
        // ...and never loses more matches than applying everything.
        let err_all: usize = all[2].parse().unwrap();
        let err_sel: usize = selected[2].parse().unwrap();
        assert!(err_sel <= err_all, "errors {err_sel} vs {err_all}");
    }

    #[test]
    fn adaptive_votes_spend_fewer_assignments() {
        let t = adaptive_votes_ablation();
        let fixed: u64 = t.rows[0][1].parse().unwrap();
        let adaptive: u64 = t.rows[1][1].parse().unwrap();
        assert!(adaptive < fixed, "adaptive {adaptive} vs fixed {fixed}");
        let acc: f64 = t.rows[1][2].parse().unwrap();
        assert!(acc >= 0.9, "adaptive accuracy {acc}");
    }

    #[test]
    fn cache_zeroes_second_run() {
        let t = cache_ablation();
        assert_ne!(t.rows[0][1], "0");
        assert_eq!(t.rows[1][1], "0");
    }
}
