//! Wall-clock trajectory of the data-layout pass (ISSUE 9).
//!
//! Each microbenchmark times the **retained naive baseline** (the
//! layout the seed shipped: nested `Vec`s, per-item allocation, full
//! cross-product scans) against the optimized hot path that replaced
//! it, on the same input, in the same process. The committed artifact
//! `BENCH_wallclock.json` records the medians and speedups; the tier-1
//! gate test asserts
//!
//! 1. at least one gated microbench still achieves a ≥
//!    [`GATE_MIN_SPEEDUP`]× median speedup, and
//! 2. no bench's speedup has collapsed below its committed snapshot by
//!    more than [`SNAPSHOT_TOLERANCE`]× (catches a reverted
//!    optimization without flaking on machine noise).
//!
//! Gating **ratios** rather than absolute nanoseconds is deliberate:
//! both sides run in the same process on the same machine, so the
//! ratio cancels CPU speed, debug-vs-release codegen, and CI host
//! variance — the things that make absolute-time gates flaky.
//!
//! The three end-to-end workload timings (celebrity join §3.3, squares
//! sort §4.2, movie filters §5) are informational medians for the
//! artifact; they track the trajectory but are not gated.

use std::time::Instant;

use criterion::{Criterion, SampleSummary, Throughput};
use qurk::ops::partition::{candidate_pairs, candidate_pairs_naive};
use qurk_combine::em::{LabelObservation, QualityAdjust, QualityAdjustConfig};
use qurk_metrics::{fleiss_kappa, kendall_tau_b, kendall_tau_b_quadratic, CountMatrix};

use crate::opt_exps::{learn, trial_workloads};

/// Minimum median speedup at least one gated microbench must hold.
pub const GATE_MIN_SPEEDUP: f64 = 2.0;

/// A bench's current speedup may fall to `committed / SNAPSHOT_TOLERANCE`
/// before the snapshot check trips. Generous on purpose: it exists to
/// catch an optimization being reverted (speedup → ~1), not jitter —
/// and the committed artifact is produced in `--release` while the
/// tier-1 gate test re-measures under debug codegen, which compresses
/// algorithmic speedups by a few x on its own.
pub const SNAPSHOT_TOLERANCE: f64 = 6.0;

/// Timed samples per measurement in the committed artifact run.
pub const DEFAULT_SAMPLES: usize = 15;

/// One baseline-vs-optimized measurement.
#[derive(Debug, Clone)]
pub struct MicroBench {
    pub name: &'static str,
    /// Gated benches participate in the ≥2× acceptance criterion.
    pub gated: bool,
    pub baseline_median_ns: u64,
    pub optimized_median_ns: u64,
    /// baseline / optimized median.
    pub speedup: f64,
    /// Logical elements one iteration processes (votes, pairs, ranks).
    pub elements: u64,
    /// Optimized-path throughput at the median.
    pub optimized_elems_per_sec: f64,
}

/// One end-to-end workload timing (informational).
#[derive(Debug, Clone)]
pub struct WorkloadTiming {
    pub workload: &'static str,
    pub median_ns: u64,
}

/// The full suite's output.
#[derive(Debug, Clone, Default)]
pub struct WallclockReport {
    pub micro: Vec<MicroBench>,
    pub workloads: Vec<WorkloadTiming>,
}

impl WallclockReport {
    /// Does any gated microbench meet the ≥2× criterion?
    pub fn passes_gate(&self) -> bool {
        self.micro
            .iter()
            .any(|m| m.gated && m.speedup >= GATE_MIN_SPEEDUP)
    }
}

// ------------------------------------------------------- naive baselines

/// The seed's EM layout: HashMap vote grouping, one `Vec` allocated
/// per item per E-step, nested `Vec<Vec<f64>>` confusion matrices, and
/// `priors.clone()` for unvoted items. Same math and float-op order as
/// [`QualityAdjust::run`], so the outputs agree and only layout is
/// being measured.
// Index-based loops are part of the naive shape under measurement.
#[allow(clippy::needless_range_loop)]
fn naive_em(
    obs: &[LabelObservation],
    k: usize,
    iterations: usize,
    smoothing: f64,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    use std::collections::HashMap;
    let num_items = obs.iter().map(|o| o.item + 1).max().unwrap_or(0);
    let num_workers = obs.iter().map(|o| o.worker + 1).max().unwrap_or(0);
    let mut by_item: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
    for o in obs {
        by_item.entry(o.item).or_default().push((o.worker, o.label));
    }
    let empty: Vec<(usize, usize)> = Vec::new();

    let normalize = |row: &mut [f64]| {
        let sum: f64 = row.iter().sum();
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        } else {
            let u = 1.0 / row.len() as f64;
            for v in row.iter_mut() {
                *v = u;
            }
        }
    };

    let mut posteriors: Vec<Vec<f64>> = (0..num_items)
        .map(|item| {
            let mut row = vec![1e-9f64; k];
            for &(_, l) in by_item.get(&item).unwrap_or(&empty) {
                row[l] += 1.0;
            }
            normalize(&mut row);
            row
        })
        .collect();
    let mut confusion: Vec<Vec<Vec<f64>>> = vec![vec![vec![0.0; k]; k]; num_workers];
    let mut priors = vec![1.0 / k as f64; k];

    for _ in 0..iterations {
        for w in confusion.iter_mut() {
            for t in w.iter_mut() {
                for c in t.iter_mut() {
                    *c = smoothing;
                }
            }
        }
        for item in 0..num_items {
            for &(w, l) in by_item.get(&item).unwrap_or(&empty) {
                for t in 0..k {
                    confusion[w][t][l] += posteriors[item][t];
                }
            }
        }
        for w in confusion.iter_mut() {
            for t in w.iter_mut() {
                normalize(t);
            }
        }
        let mut new_priors = vec![smoothing; k];
        for post in &posteriors {
            for (t, &p) in post.iter().enumerate() {
                new_priors[t] += p;
            }
        }
        normalize(&mut new_priors);
        priors = new_priors;

        for item in 0..num_items {
            let vs = by_item.get(&item).unwrap_or(&empty);
            if vs.is_empty() {
                // The allocation-per-unvoted-item the optimized path
                // removed (satellite fix).
                posteriors[item] = priors.clone();
                continue;
            }
            let mut log_p: Vec<f64> = priors.iter().map(|p| p.max(1e-300).ln()).collect();
            for &(w, l) in vs {
                for (t, lp) in log_p.iter_mut().enumerate() {
                    *lp += confusion[w][t][l].max(1e-300).ln();
                }
            }
            let max = log_p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for lp in log_p.iter_mut() {
                *lp = (*lp - max).exp();
            }
            normalize(&mut log_p);
            posteriors[item] = log_p;
        }
    }
    (posteriors, priors)
}

/// Synthetic vote corpus shaped like a celebrity-join combine: sparse
/// items (some unvoted), a worker pool with spammers, deterministic.
pub fn em_corpus(items: usize, votes_per_item: usize, workers: usize) -> Vec<LabelObservation> {
    let mut obs = Vec::with_capacity(items * votes_per_item);
    for item in 0..items {
        if item % 17 == 0 {
            continue; // unvoted: exercises the priors-copy path
        }
        let truth = item % 4 == 0;
        for v in 0..votes_per_item {
            let worker = (item * 7 + v * 31) % workers;
            let label = if worker < workers / 10 {
                true // spammer always answers yes
            } else {
                truth ^ ((item * 2654435761 + v * 40503) % 100 < 15)
            };
            obs.push(LabelObservation {
                worker,
                item,
                label: usize::from(label),
            });
        }
    }
    obs
}

/// Deterministic score vector with heavy ties (mod 13) — the τ shape
/// hybrid sorts compare (rating buckets vs comparison wins).
fn tau_scores(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut s = seed;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    let xs: Vec<f64> = (0..n).map(|_| (next() % 13) as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| {
            if next() % 4 == 0 {
                (next() % 13) as f64
            } else {
                x
            }
        })
        .collect();
    (xs, ys)
}

/// Label matrix shaped like feature-filter vote batches: `subjects`
/// rows of `raters` labels over `k` categories.
fn kappa_labels(subjects: usize, raters: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut s = seed;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    (0..subjects)
        .map(|_| {
            let majority = (next() % k as u64) as usize;
            (0..raters)
                .map(|_| {
                    if next() % 100 < 70 {
                        majority
                    } else {
                        (next() % k as u64) as usize
                    }
                })
                .collect()
        })
        .collect()
}

/// The seed's κ layout: rebuild a nested count matrix per batch.
fn naive_kappa(labels: &[Vec<usize>], k: usize) -> f64 {
    let counts: Vec<Vec<u32>> = labels
        .iter()
        .filter(|row| row.len() >= 2)
        .map(|row| {
            let mut c = vec![0u32; k];
            for &l in row {
                c[l] += 1;
            }
            c
        })
        .collect();
    fleiss_kappa(&counts).unwrap_or(0.0)
}

/// One extraction table: per row, one extracted feature value (or
/// `None` = UNKNOWN) per feature column.
type FeatureTable = Vec<Vec<Option<usize>>>;

/// Feature-extraction tables for the candidate-generation bench.
fn extraction_tables(n: usize, seed: u64) -> (FeatureTable, FeatureTable) {
    let mut s = seed;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    let mut table = |rows: usize| -> FeatureTable {
        (0..rows)
            .map(|_| {
                [10u64, 4]
                    .iter() // gender-ish and hair-ish domains
                    .map(|&k| {
                        if next() % 100 < 10 {
                            None // UNKNOWN (§2.4)
                        } else {
                            Some((next() % k) as usize)
                        }
                    })
                    .collect()
            })
            .collect()
    };
    (table(n), table(n))
}

// ------------------------------------------------------------ the suite

fn summarize(
    g: &mut criterion::BenchmarkGroup<'_>,
    id: &str,
    mut f: impl FnMut(),
) -> SampleSummary {
    g.bench_function(id, |b| b.iter(&mut f))
        .expect("sample_size >= 1 always yields samples")
}

/// Run the four baseline-vs-optimized microbenchmarks with
/// `samples` timed iterations each.
pub fn run_microbenches(samples: usize) -> Vec<MicroBench> {
    let mut c = Criterion::default();
    let mut g = c.benchmark_group("wallclock");
    g.sample_size(samples).warm_up_iters(1);
    let mut out = Vec::new();
    let mut push = |name: &'static str,
                    gated: bool,
                    elements: u64,
                    baseline: SampleSummary,
                    optimized: SampleSummary| {
        let speedup = baseline.median.as_secs_f64() / optimized.median.as_secs_f64().max(1e-12);
        out.push(MicroBench {
            name,
            gated,
            baseline_median_ns: baseline.median.as_nanos() as u64,
            optimized_median_ns: optimized.median.as_nanos() as u64,
            speedup,
            elements,
            optimized_elems_per_sec: optimized.elements_per_sec(Throughput::Elements(elements)),
        });
    };

    // EM combine: nested seed layout vs flat CSR scratch.
    {
        let obs = em_corpus(400, 6, 40);
        let cfg = QualityAdjustConfig::paper_join();
        let em = QualityAdjust::new(cfg.clone());
        g.throughput(Throughput::Elements(obs.len() as u64));
        let base = summarize(&mut g, "em-combine/naive", || {
            criterion::black_box(naive_em(
                &obs,
                cfg.num_labels,
                cfg.iterations,
                cfg.smoothing,
            ));
        });
        let opt = summarize(&mut g, "em-combine/flat", || {
            criterion::black_box(em.run(&obs));
        });
        push("em-combine", true, obs.len() as u64, base, opt);
    }

    // Kendall τ-b: O(n²) pair scan vs Knight's merge path.
    {
        let (xs, ys) = tau_scores(4096, 0x7a07);
        g.throughput(Throughput::Elements(xs.len() as u64));
        let base = summarize(&mut g, "tau-metrics/quadratic", || {
            criterion::black_box(kendall_tau_b_quadratic(&xs, &ys).unwrap());
        });
        let opt = summarize(&mut g, "tau-metrics/merge", || {
            criterion::black_box(kendall_tau_b(&xs, &ys).unwrap());
        });
        push("tau-metrics", true, xs.len() as u64, base, opt);
    }

    // Fleiss κ: per-batch nested rebuild vs reused flat CountMatrix.
    {
        let k = 6;
        let batches: Vec<Vec<Vec<usize>>> = (0..32)
            .map(|i| kappa_labels(64, 5, k, 0xbeef + i))
            .collect();
        let elements = (batches.len() * 64 * 5) as u64;
        g.throughput(Throughput::Elements(elements));
        let base = summarize(&mut g, "kappa-metrics/nested", || {
            let mut acc = 0.0;
            for labels in &batches {
                acc += naive_kappa(labels, k);
            }
            criterion::black_box(acc);
        });
        let mut counts = CountMatrix::new(k);
        let opt = summarize(&mut g, "kappa-metrics/flat", || {
            let mut acc = 0.0;
            for labels in &batches {
                counts.fill_from_labels(labels, k);
                acc += qurk_metrics::fleiss_kappa_flat(&counts).unwrap_or(0.0);
            }
            criterion::black_box(acc);
        });
        push("kappa-metrics", true, elements, base, opt);
    }

    // Machine-side join candidates: |L|×|R| scan vs hash partitioning.
    {
        let (left, right) = extraction_tables(600, 0x30b);
        let selected = vec![0usize, 1];
        let elements = (left.len() * right.len()) as u64;
        g.throughput(Throughput::Elements(elements));
        let base = summarize(&mut g, "join-partition/naive", || {
            criterion::black_box(candidate_pairs_naive(&selected, &left, &right));
        });
        let opt = summarize(&mut g, "join-partition/partitioned", || {
            criterion::black_box(candidate_pairs(&selected, &left, &right));
        });
        push("join-partition", true, elements, base, opt);
    }

    g.finish();
    out
}

/// Median-of-`trials` end-to-end wall-clock for the three standard
/// workloads (one as-written live run each). Informational.
pub fn run_workload_timings(trials: usize) -> Vec<WorkloadTiming> {
    let names = ["celebrity-join", "squares-sort", "movie-filters"];
    let mut medians = Vec::new();
    for (wi, workload) in names.into_iter().enumerate() {
        let mut samples: Vec<u64> = (0..trials.max(1))
            .map(|t| {
                let w = &trial_workloads(0x0071 + t as u64 * 0x1000)[wi];
                let start = Instant::now();
                criterion::black_box(learn(w));
                start.elapsed().as_nanos() as u64
            })
            .collect();
        samples.sort_unstable();
        medians.push(WorkloadTiming {
            workload,
            median_ns: samples[(samples.len() - 1) / 2],
        });
    }
    medians
}

/// The full suite at artifact quality.
pub fn run_suite() -> WallclockReport {
    WallclockReport {
        micro: run_microbenches(DEFAULT_SAMPLES),
        workloads: run_workload_timings(5),
    }
}

// ------------------------------------------------------------- artifact

/// Serialize to the `BENCH_wallclock.json` artifact (hand-rolled JSON;
/// the workspace is dependency-free by design).
pub fn to_json(report: &WallclockReport) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"wallclock-data-layout\",\n");
    out.push_str(&format!(
        "  \"gate_min_speedup\": {GATE_MIN_SPEEDUP:.1},\n  \"snapshot_tolerance\": {SNAPSHOT_TOLERANCE:.1},\n"
    ));
    out.push_str("  \"micro\": [\n");
    for (i, m) in report.micro.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"gated\": {}, \"baseline_median_ns\": {}, \
             \"optimized_median_ns\": {}, \"speedup\": {:.2}, \"elements\": {}, \
             \"optimized_elems_per_sec\": {:.0}}}{}\n",
            m.name,
            m.gated,
            m.baseline_median_ns,
            m.optimized_median_ns,
            m.speedup,
            m.elements,
            m.optimized_elems_per_sec,
            if i + 1 == report.micro.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"workloads\": [\n");
    for (i, w) in report.workloads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"median_ns\": {}}}{}\n",
            w.workload,
            w.median_ns,
            if i + 1 == report.workloads.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON artifact to `path`.
pub fn write_json(report: &WallclockReport, path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_json(report))
}

/// Extract `(name, speedup)` pairs from a committed artifact. A tiny
/// scanner over the format [`to_json`] emits — not a general JSON
/// parser, and deliberately strict about that format.
pub fn parse_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = rest[..name_end].to_string();
        let Some(sp_at) = line.find("\"speedup\": ") else {
            continue;
        };
        let tail = &line[sp_at + 11..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(speedup) = num.parse::<f64>() {
            out.push((name, speedup));
        }
    }
    out
}

/// Path of the committed artifact, resolved from this crate.
pub fn committed_artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wallclock.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Baseline faithfulness: the naive EM reimplementation and the
    /// optimized combiner agree on posteriors and priors, so the bench
    /// measures layout, not different math.
    #[test]
    fn naive_em_matches_optimized_em() {
        let obs = em_corpus(60, 5, 12);
        let cfg = QualityAdjustConfig::paper_join();
        let (naive_post, naive_priors) =
            naive_em(&obs, cfg.num_labels, cfg.iterations, cfg.smoothing);
        let out = QualityAdjust::new(cfg).run(&obs);
        assert_eq!(naive_post.len(), out.posteriors.len());
        for (a, b) in naive_post.iter().zip(&out.posteriors) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "posterior drift: {x} vs {y}");
            }
        }
        for (x, y) in naive_priors.iter().zip(&out.priors) {
            assert!((x - y).abs() < 1e-12, "prior drift: {x} vs {y}");
        }
    }

    /// The tier-1 acceptance gate (ISSUE 9): the data-layout pass holds
    /// a ≥2× median wall-clock win on at least one gated microbench,
    /// and no bench has collapsed vs the committed snapshot.
    #[test]
    fn layout_pass_holds_the_wallclock_gate() {
        let micro = run_microbenches(5);
        assert_eq!(micro.len(), 4);
        for m in &micro {
            println!(
                "{}: {:.2}x ({} ns -> {} ns)",
                m.name, m.speedup, m.baseline_median_ns, m.optimized_median_ns
            );
        }
        assert!(
            micro
                .iter()
                .any(|m| m.gated && m.speedup >= GATE_MIN_SPEEDUP),
            "no gated microbench reached {GATE_MIN_SPEEDUP}x: {micro:?}"
        );

        // Snapshot check against the committed artifact.
        let committed = std::fs::read_to_string(committed_artifact_path())
            .expect("BENCH_wallclock.json must be committed at the repo root");
        let snapshot = parse_speedups(&committed);
        assert!(
            !snapshot.is_empty(),
            "committed artifact must contain speedups"
        );
        assert!(
            snapshot.iter().any(|(_, s)| *s >= GATE_MIN_SPEEDUP),
            "committed artifact itself must meet the gate"
        );
        for (name, committed_speedup) in &snapshot {
            let cur = micro
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("committed bench {name} no longer exists"));
            assert!(
                cur.speedup >= committed_speedup / SNAPSHOT_TOLERANCE,
                "{name} regressed: {:.2}x now vs {committed_speedup:.2}x committed \
                 (tolerance {SNAPSHOT_TOLERANCE}x)",
                cur.speedup
            );
        }
    }

    /// Replay byte-identity across the layout pass: for each standard
    /// workload, a live recorded run and its trace replay render the
    /// same result relation byte for byte. Interned text, columnar
    /// mirrors, flat EM scratch, and the partitioned candidate
    /// generator must all be invisible in query output.
    #[test]
    fn replayed_workloads_are_byte_identical_to_live() {
        use qurk::prelude::*;
        use qurk::{RecordingBackend, ReplayTrace};
        for w in trial_workloads(0x0071) {
            let mut live = Session::builder()
                .catalog(&w.catalog)
                .backend(RecordingBackend::new((w.make_market)()))
                .build();
            let live_report = live.query(&w.sql).report().unwrap();
            let trace: ReplayTrace = live.backend_mut().inner_mut().inner_mut().trace().clone();

            let mut replay = Session::builder()
                .catalog(&w.catalog)
                .backend(ReplayBackend::from_trace(trace))
                .build();
            let replay_report = replay.query(&w.sql).report().unwrap();

            assert_eq!(
                live_report.relation.to_tsv(),
                replay_report.relation.to_tsv(),
                "{}: replay output diverged from live",
                w.name
            );
        }
    }

    #[test]
    fn json_roundtrips_through_the_scanner() {
        let report = WallclockReport {
            micro: vec![MicroBench {
                name: "em-combine",
                gated: true,
                baseline_median_ns: 2_000_000,
                optimized_median_ns: 500_000,
                speedup: 4.0,
                elements: 2400,
                optimized_elems_per_sec: 4_800_000.0,
            }],
            workloads: vec![WorkloadTiming {
                workload: "celebrity-join",
                median_ns: 123_456_789,
            }],
        };
        let json = to_json(&report);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let parsed = parse_speedups(&json);
        assert_eq!(parsed, vec![("em-combine".to_string(), 4.0)]);
        assert!(report.passes_gate());
    }
}
