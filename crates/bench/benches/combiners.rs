//! Criterion benches for answer combination: MajorityVote vs the
//! QualityAdjust EM at celebrity-join scale, plus the EM-iteration
//! ablation (the paper fixes 5 iterations; how much does each cost?).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qurk_combine::em::{LabelObservation, QualityAdjust, QualityAdjustConfig};
use qurk_combine::majority_vote_bool;
use std::hint::black_box;

/// Synthetic join vote corpus: `pairs` pairs × `votes` votes each from
/// a pool of 150 workers with deterministic pseudo-noise.
fn corpus(pairs: usize, votes: usize) -> Vec<LabelObservation> {
    let mut obs = Vec::with_capacity(pairs * votes);
    for p in 0..pairs {
        let truth = p % 30 == 0;
        for v in 0..votes {
            let worker = (p * 7 + v * 31) % 150;
            // ~15% error, worker 0-14 are spammers answering yes.
            let label = if worker < 15 {
                true
            } else {
                let noise = (p * 2654435761 + v * 40503) % 100 < 15;
                truth ^ noise
            };
            obs.push(LabelObservation {
                worker,
                item: p,
                label: usize::from(label),
            });
        }
    }
    obs
}

fn bench_combiners(c: &mut Criterion) {
    let mut g = c.benchmark_group("combiners");
    for &pairs in &[100usize, 900, 4000] {
        let obs = corpus(pairs, 10);
        // Majority vote over the same corpus.
        g.bench_with_input(BenchmarkId::new("majority_vote", pairs), &obs, |b, obs| {
            b.iter(|| {
                let mut by_item: Vec<Vec<bool>> = vec![Vec::new(); pairs];
                for o in obs {
                    by_item[o.item].push(o.label == 1);
                }
                let decisions: Vec<bool> = by_item.iter().map(|v| majority_vote_bool(v)).collect();
                black_box(decisions)
            })
        });
        g.bench_with_input(
            BenchmarkId::new("quality_adjust_5it", pairs),
            &obs,
            |b, obs| {
                let qa = QualityAdjust::new(QualityAdjustConfig::paper_join());
                b.iter(|| black_box(qa.run(obs)))
            },
        );
    }
    g.finish();

    // Ablation: EM iteration count (paper uses 5).
    let mut g = c.benchmark_group("qa_iterations");
    let obs = corpus(900, 10);
    for &iters in &[1usize, 3, 5, 10] {
        g.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            let mut cfg = QualityAdjustConfig::paper_join();
            cfg.iterations = iters;
            let qa = QualityAdjust::new(cfg);
            b.iter(|| black_box(qa.run(&obs)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_combiners);
criterion_main!(benches);
