//! Criterion benches for the marketplace event loop: end-to-end
//! simulated throughput of filter workloads and join workloads
//! (assignments processed per wall-clock second drive every experiment
//! in the harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qurk_crowd::question::{HitKind, Question};
use qurk_crowd::truth::PredicateTruth;
use qurk_crowd::{CrowdConfig, GroundTruth, HitSpec, Marketplace};
use std::hint::black_box;

fn filter_world(n: usize) -> (CrowdConfig, GroundTruth) {
    let mut gt = GroundTruth::new();
    let items = gt.new_items(n);
    for (i, &it) in items.iter().enumerate() {
        gt.set_predicate(
            it,
            "p",
            PredicateTruth {
                value: i % 2 == 0,
                error_rate: 0.05,
            },
        );
    }
    (CrowdConfig::default(), gt)
}

fn bench_marketplace(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_loop");
    g.sample_size(20);
    for &n in &[100usize, 500] {
        g.bench_with_input(BenchmarkId::new("filter_batch5", n), &n, |b, &n| {
            b.iter(|| {
                let (cfg, gt) = filter_world(n);
                let mut m = Marketplace::new(&cfg, gt.clone());
                let items: Vec<_> = (0..n as u64).map(qurk_crowd::ItemId).collect();
                let specs: Vec<HitSpec> = items
                    .chunks(5)
                    .map(|chunk| {
                        HitSpec::new(
                            chunk
                                .iter()
                                .map(|&it| Question::Filter {
                                    item: it,
                                    predicate: "p".into(),
                                })
                                .collect(),
                            HitKind::Filter,
                        )
                    })
                    .collect();
                m.post_group(specs);
                black_box(m.run_to_completion());
                black_box(m.drain_new_assignments().len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_marketplace);
criterion_main!(benches);
