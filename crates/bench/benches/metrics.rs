//! Criterion benches for the statistical metrics: Kendall τ-b (the
//! O(n²) pair scan) and Fleiss κ at Table 4 scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qurk_metrics::kappa::{fleiss_kappa, modified_fleiss_kappa};
use qurk_metrics::{kendall_tau_b, linear_regression};
use std::hint::black_box;

fn vectors(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let ys: Vec<f64> = (0..n)
        .map(|i| (i as f64) + ((i * 2654435761) % 17) as f64)
        .collect();
    (xs, ys)
}

fn counts(subjects: usize, k: usize) -> Vec<Vec<u32>> {
    (0..subjects)
        .map(|s| {
            let mut row = vec![0u32; k];
            for v in 0..5 {
                row[(s * 3 + v) % k] += 1;
            }
            row
        })
        .collect()
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("kendall_tau_b");
    for &n in &[27usize, 40, 200] {
        let (xs, ys) = vectors(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(kendall_tau_b(&xs, &ys).unwrap()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fleiss_kappa");
    for &subjects in &[60usize, 780] {
        let m = counts(subjects, 4);
        g.bench_with_input(BenchmarkId::new("standard", subjects), &m, |b, m| {
            b.iter(|| black_box(fleiss_kappa(m).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("modified", subjects), &m, |b, m| {
            b.iter(|| black_box(modified_fleiss_kappa(m).unwrap()))
        });
    }
    g.finish();

    c.bench_function("ols_regression_200", |b| {
        let (xs, ys) = vectors(200);
        b.iter(|| black_box(linear_regression(&xs, &ys).unwrap()))
    });
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
