//! Criterion benches for the sort machinery: the greedy pair-cover
//! generator (§4.1.1's batch generation), head-to-head scoring, and
//! cycle detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qurk::ops::sort::{CompareSort, PairTally};
use std::hint::black_box;

fn tally(n: usize) -> PairTally {
    let mut t = PairTally::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            // 4:1 majority for the true order with a few inversions.
            let invert = (i * 2654435761 + j * 40503) % 13 == 0;
            let (w, l) = if invert { (j, i) } else { (i, j) };
            for _ in 0..4 {
                t.record_pair(w, l);
            }
            t.record_pair(l, w);
        }
    }
    t
}

fn bench_sort_algos(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_groups");
    for &(n, s) in &[(40usize, 5usize), (40, 10), (100, 5)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_s{s}")),
            &(n, s),
            |b, &(n, s)| b.iter(|| black_box(CompareSort::plan_groups(n, s, 42))),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("head_to_head");
    for &n in &[27usize, 40, 100] {
        let t = tally(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| black_box(t.head_to_head_scores()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("cycle_detection");
    for &n in &[27usize, 100] {
        let t = tally(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| black_box(t.has_cycles()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sort_algos);
criterion_main!(benches);
