//! The celebrity join dataset (§3.3.1).
//!
//! "This dataset contains two tables. The first is `celeb(name text,
//! img url)`, a table of known celebrities, each with a profile photo
//! from IMDB. The second table is `photos(id int, img url)`, with
//! images of celebrities collected from People Magazine's collection of
//! photos from the 2011 Oscar awards. Each table contains one image of
//! each celebrity."
//!
//! The synthetic generator preserves the statistical structure the
//! paper's experiments depend on:
//!
//! * **Demographics** skewed like an awards-night crowd — gender
//!   balanced, hair dominated by brown/black, skin mostly light — which
//!   caps how selective each feature filter can be (§3.2's σᵢ).
//! * **Hair ambiguity**: a configurable fraction of celebrities has
//!   dyed or blond-vs-white-ambiguous hair, dragging Fleiss' κ for hair
//!   into the 0.26–0.45 band of Table 4.
//! * **Hair drift**: for some celebrities the two photos genuinely read
//!   as different hair colors ("a person has different hair color in
//!   two different images", §3.2) — the source of every feature-filter
//!   error in Table 3.
//! * **Combined-interface focus**: asking all three features at once
//!   makes workers treat the task as a demographic survey and improves
//!   skin/hair accuracy (§3.3.4); modeled by tighter combined-interface
//!   report distributions.
//! * **Lookalikes**: entities sharing all three features get elevated
//!   pairwise similarity, the source of rare join false positives.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qurk_crowd::truth::{FeatureTruth, PredicateTruth};
use qurk_crowd::{EntityId, GroundTruth, ItemId};

/// Feature names.
pub const GENDER: &str = "gender";
pub const HAIR: &str = "hairColor";
pub const SKIN: &str = "skinColor";
/// Filter predicate name (§2.1's running example).
pub const IS_FEMALE: &str = "isFemale";

pub const GENDER_OPTIONS: [&str; 2] = ["Male", "Female"];
pub const HAIR_OPTIONS: [&str; 4] = ["black", "brown", "blond", "white"];
pub const SKIN_OPTIONS: [&str; 3] = ["light", "medium", "dark"];

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct CelebrityConfig {
    pub num_celebrities: usize,
    pub seed: u64,
    /// Fraction of celebrities whose hair color is ambiguous to raters.
    pub hair_ambiguous_fraction: f64,
    /// Probability the two photos of a celebrity truly differ in hair
    /// color (dye between events).
    pub hair_drift_probability: f64,
}

impl Default for CelebrityConfig {
    fn default() -> Self {
        CelebrityConfig {
            num_celebrities: 30,
            seed: 0xCE1EB,
            hair_ambiguous_fraction: 0.25,
            hair_drift_probability: 0.07,
        }
    }
}

impl CelebrityConfig {
    pub fn with_celebrities(mut self, n: usize) -> Self {
        self.num_celebrities = n;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One celebrity's hidden attributes.
#[derive(Debug, Clone)]
pub struct Celebrity {
    pub entity: EntityId,
    pub name: String,
    pub gender: usize,
    /// Hair color in the profile photo.
    pub hair_profile: usize,
    /// Hair color in the award photo (may differ: drift).
    pub hair_award: usize,
    pub skin: usize,
    pub hair_ambiguous: bool,
}

/// The generated two-table dataset.
#[derive(Debug, Clone)]
pub struct CelebrityDataset {
    pub celebrities: Vec<Celebrity>,
    /// `celeb` table items (profile photos), one per celebrity.
    pub celeb_items: Vec<ItemId>,
    /// `photos` table items (award photos), one per celebrity, shuffled
    /// so row order does not leak the match.
    pub photo_items: Vec<ItemId>,
    /// For evaluation: photo_owner\[i\] = index into `celebrities` of
    /// the celebrity shown in `photo_items[i]`.
    pub photo_owner: Vec<usize>,
}

impl CelebrityDataset {
    pub fn len(&self) -> usize {
        self.celebrities.len()
    }

    pub fn is_empty(&self) -> bool {
        self.celebrities.is_empty()
    }

    /// Ground-truth matching pairs as (celeb_item, photo_item).
    pub fn true_matches(&self) -> Vec<(ItemId, ItemId)> {
        self.photo_owner
            .iter()
            .enumerate()
            .map(|(photo_idx, &celeb_idx)| {
                (self.celeb_items[celeb_idx], self.photo_items[photo_idx])
            })
            .collect()
    }
}

fn sample_discrete(rng: &mut StdRng, probs: &[f64]) -> usize {
    let draw: f64 = rng.random();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if draw < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Report-probability vector: `truth` gets `p_true`, `spread` is split
/// over the other options proportional to `adjacency`, and the final
/// entry is the UNKNOWN probability.
fn report_probs(k: usize, truth: usize, p_true: f64, p_unknown: f64) -> Vec<f64> {
    let spread = (1.0 - p_true - p_unknown).max(0.0);
    let mut v = vec![spread / (k - 1) as f64; k];
    v[truth] = p_true;
    v.push(p_unknown);
    v
}

/// Hair report distribution with ambiguity between adjacent colors
/// (black↔brown, brown↔blond, blond↔white — the dyed/blond-vs-white
/// confusions called out in §3.3.4).
fn hair_report_probs(truth: usize, ambiguous: bool, combined: bool) -> Vec<f64> {
    let k = HAIR_OPTIONS.len();
    let (p_true, p_adj, p_unknown) = match (ambiguous, combined) {
        (true, false) => (0.55, 0.32, 0.05),
        (true, true) => (0.66, 0.26, 0.03),
        (false, false) => (0.86, 0.08, 0.03),
        (false, true) => (0.90, 0.06, 0.02),
    };
    let mut v = vec![0.0; k];
    v[truth] = p_true;
    let neighbors: Vec<usize> = [truth.wrapping_sub(1), truth + 1]
        .iter()
        .copied()
        .filter(|&i| i < k)
        .collect();
    for &n in &neighbors {
        v[n] += p_adj / neighbors.len() as f64;
    }
    let rest = (1.0 - p_true - p_adj - p_unknown).max(0.0);
    let others = k - 1 - neighbors.len();
    if others > 0 {
        for (i, slot) in v.iter_mut().enumerate() {
            if i != truth && !neighbors.contains(&i) {
                *slot += rest / others as f64;
            }
        }
    }
    v.push(p_unknown);
    v
}

/// Generate the two-table celebrity dataset into `truth`.
pub fn celebrity_dataset(truth: &mut GroundTruth, config: &CelebrityConfig) -> CelebrityDataset {
    assert!(config.num_celebrities > 0, "need at least one celebrity");
    let mut rng = StdRng::seed_from_u64(config.seed);

    truth.define_feature(GENDER, &GENDER_OPTIONS);
    truth.define_feature(HAIR, &HAIR_OPTIONS);
    truth.define_feature(SKIN, &SKIN_OPTIONS);
    truth.set_default_similarity(0.05);

    // Awards-night demographics. Hair is dominated by brown and skin
    // by light — which is exactly why Table 3 finds gender the only
    // strongly selective feature (σ_gender ≈ 0.5 beats σ_hair ≈ 0.6
    // and σ_skin ≈ 0.87).
    const HAIR_DIST: [f64; 4] = [0.12, 0.75, 0.08, 0.05];
    const SKIN_DIST: [f64; 3] = [0.82, 0.12, 0.06];

    let n = config.num_celebrities;
    let mut celebrities = Vec::with_capacity(n);
    let mut celeb_items = Vec::with_capacity(n);
    let mut photo_items_ordered = Vec::with_capacity(n);

    for i in 0..n {
        let entity = EntityId(i as u64 + 1);
        let gender = usize::from(rng.random::<f64>() < 0.5);
        let hair_profile = sample_discrete(&mut rng, &HAIR_DIST);
        let hair_ambiguous = rng.random::<f64>() < config.hair_ambiguous_fraction;
        let drift = rng.random::<f64>() < config.hair_drift_probability;
        let hair_award = if drift {
            // Dye jobs move to an adjacent color.
            if hair_profile + 1 < HAIR_OPTIONS.len() {
                hair_profile + 1
            } else {
                hair_profile - 1
            }
        } else {
            hair_profile
        };
        let skin = sample_discrete(&mut rng, &SKIN_DIST);
        let name = format!("celebrity-{i:03}");

        let celeb_item = truth.new_item();
        let photo_item = truth.new_item();
        truth.set_entity(celeb_item, entity);
        truth.set_entity(photo_item, entity);

        for (item, hair) in [(celeb_item, hair_profile), (photo_item, hair_award)] {
            truth.set_feature(
                item,
                GENDER,
                FeatureTruth {
                    value: gender,
                    report_probs: report_probs(2, gender, 0.97, 0.005),
                },
            );
            truth.set_feature_for_combined(
                item,
                GENDER,
                FeatureTruth {
                    value: gender,
                    report_probs: report_probs(2, gender, 0.98, 0.005),
                },
            );
            truth.set_feature(
                item,
                HAIR,
                FeatureTruth {
                    value: hair,
                    report_probs: hair_report_probs(hair, hair_ambiguous, false),
                },
            );
            truth.set_feature_for_combined(
                item,
                HAIR,
                FeatureTruth {
                    value: hair,
                    report_probs: hair_report_probs(hair, hair_ambiguous, true),
                },
            );
            // Skin: workers are uneasy answering it in isolation (§3.3.4
            // hypothesizes discomfort) but treat the combined interface
            // as a neutral demographic survey.
            truth.set_feature(
                item,
                SKIN,
                FeatureTruth {
                    value: skin,
                    report_probs: report_probs(3, skin, 0.88, 0.04),
                },
            );
            truth.set_feature_for_combined(
                item,
                SKIN,
                FeatureTruth {
                    value: skin,
                    report_probs: report_probs(3, skin, 0.96, 0.01),
                },
            );
            truth.set_predicate(
                item,
                IS_FEMALE,
                PredicateTruth {
                    value: gender == 1,
                    error_rate: 0.03,
                },
            );
        }

        celebrities.push(Celebrity {
            entity,
            name,
            gender,
            hair_profile,
            hair_award,
            skin,
            hair_ambiguous,
        });
        celeb_items.push(celeb_item);
        photo_items_ordered.push(photo_item);
    }

    // Lookalike similarity: same demographic triple -> hard pairs.
    for i in 0..n {
        for j in (i + 1)..n {
            let a = &celebrities[i];
            let b = &celebrities[j];
            let sim =
                if a.gender == b.gender && a.hair_profile == b.hair_profile && a.skin == b.skin {
                    0.40
                } else if a.gender == b.gender && a.hair_profile == b.hair_profile {
                    0.25
                } else if a.gender == b.gender {
                    0.12
                } else {
                    0.04
                };
            truth.set_similarity(a.entity, b.entity, sim);
        }
    }

    // Shuffle the photos table so position does not encode the match.
    let mut photo_perm: Vec<usize> = (0..n).collect();
    qurk_crowd::rng::shuffle(&mut rng, &mut photo_perm);
    let photo_items: Vec<ItemId> = photo_perm.iter().map(|&i| photo_items_ordered[i]).collect();
    let photo_owner = photo_perm;

    CelebrityDataset {
        celebrities,
        celeb_items,
        photo_items,
        photo_owner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> (GroundTruth, CelebrityDataset) {
        let mut gt = GroundTruth::new();
        let ds = celebrity_dataset(&mut gt, &CelebrityConfig::default().with_celebrities(n));
        (gt, ds)
    }

    #[test]
    fn two_tables_one_image_each() {
        let (_, ds) = build(30);
        assert_eq!(ds.celeb_items.len(), 30);
        assert_eq!(ds.photo_items.len(), 30);
        assert_eq!(ds.true_matches().len(), 30);
    }

    #[test]
    fn matches_align_entities() {
        let (gt, ds) = build(25);
        for (c, p) in ds.true_matches() {
            assert!(gt.same_entity(c, p));
        }
        // Non-matching pairs must not share entities.
        let mut non_match = 0;
        for &c in &ds.celeb_items {
            for &p in &ds.photo_items {
                if !gt.same_entity(c, p) {
                    non_match += 1;
                }
            }
        }
        assert_eq!(non_match, 25 * 25 - 25);
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = build(20);
        let (_, b) = build(20);
        assert_eq!(a.photo_owner, b.photo_owner);
        assert_eq!(
            a.celebrities
                .iter()
                .map(|c| c.hair_profile)
                .collect::<Vec<_>>(),
            b.celebrities
                .iter()
                .map(|c| c.hair_profile)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut gt = GroundTruth::new();
        let a = celebrity_dataset(&mut gt, &CelebrityConfig::default().with_seed(1));
        let mut gt2 = GroundTruth::new();
        let b = celebrity_dataset(&mut gt2, &CelebrityConfig::default().with_seed(2));
        assert_ne!(
            a.celebrities
                .iter()
                .map(|c| c.hair_profile)
                .collect::<Vec<_>>(),
            b.celebrities
                .iter()
                .map(|c| c.hair_profile)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn features_registered_for_both_photos() {
        let (gt, ds) = build(10);
        for (&c, &p) in ds.celeb_items.iter().zip(&ds.photo_items) {
            for f in [GENDER, HAIR, SKIN] {
                assert!(gt.feature(c, f).is_some(), "missing {f}");
                assert!(gt.feature(p, f).is_some(), "missing {f}");
                assert!(gt.feature_combined(c, f).is_some());
            }
            assert!(gt.predicate(c, IS_FEMALE).is_some());
        }
    }

    #[test]
    fn hair_drift_exists_but_is_minority() {
        let (_, ds) = build(200);
        let drifted = ds
            .celebrities
            .iter()
            .filter(|c| c.hair_profile != c.hair_award)
            .count();
        assert!(drifted > 5, "expected some drift, got {drifted}");
        assert!(drifted < 50, "drift should be ~10%, got {drifted}/200");
    }

    #[test]
    fn combined_interface_is_sharper_for_skin() {
        let (gt, ds) = build(10);
        let item = ds.celeb_items[0];
        let sep = gt.feature(item, SKIN).unwrap();
        let comb = gt.feature_combined(item, SKIN).unwrap();
        assert!(comb.report_probs[comb.value] > sep.report_probs[sep.value]);
    }

    #[test]
    fn skin_is_highly_homogeneous() {
        let (_, ds) = build(300);
        let light = ds.celebrities.iter().filter(|c| c.skin == 0).count();
        assert!(light > 220, "awards crowd should be mostly light: {light}");
    }

    #[test]
    fn report_probs_sum_to_one() {
        let (gt, ds) = build(20);
        for &item in ds.celeb_items.iter().chain(&ds.photo_items) {
            for f in [GENDER, HAIR, SKIN] {
                for ft in [
                    gt.feature(item, f).unwrap(),
                    gt.feature_combined(item, f).unwrap(),
                ] {
                    let s: f64 = ft.report_probs.iter().sum();
                    assert!((s - 1.0).abs() < 1e-9, "{f} probs sum {s}");
                }
            }
        }
    }

    #[test]
    fn lookalikes_have_higher_similarity() {
        let (gt, ds) = build(100);
        // Find a same-demographic pair and a different-gender pair.
        let mut same_sim = None;
        let mut diff_sim = None;
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let a = &ds.celebrities[i];
                let b = &ds.celebrities[j];
                let s = gt.similarity(ds.celeb_items[i], ds.celeb_items[j]);
                if a.gender == b.gender && a.hair_profile == b.hair_profile && a.skin == b.skin {
                    same_sim = Some(s);
                } else if a.gender != b.gender {
                    diff_sim = Some(s);
                }
            }
        }
        assert!(same_sim.unwrap() > diff_sim.unwrap());
    }
}
