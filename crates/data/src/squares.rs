//! The squares dataset (§4.2.1).
//!
//! "Each square is n×n pixels, and the smallest is 20×20. A dataset of
//! size N contains squares of sizes {(20+3i)×(20+3i) | i ∈ [0, N)}.
//! This dataset is designed so that the sort metric (square area) is
//! clearly defined, and we know the correct ordering."

use qurk_crowd::truth::DimensionParams;
use qurk_crowd::{GroundTruth, ItemId};

/// The sort dimension name registered for squares.
pub const AREA: &str = "area";

/// A generated squares dataset.
#[derive(Debug, Clone)]
pub struct SquaresDataset {
    /// Items ordered by increasing side (and therefore area).
    pub items: Vec<ItemId>,
    /// `label[i]` = "23x23"-style label for items\[i\].
    pub labels: Vec<String>,
    /// Synthetic image URLs (one per item).
    pub urls: Vec<String>,
}

impl SquaresDataset {
    /// Ground-truth ordering, largest first (the `Rank` task's
    /// `MostName` is "largest").
    pub fn true_order_desc(&self) -> Vec<ItemId> {
        self.items.iter().rev().copied().collect()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Generate `n` squares into `truth`.
///
/// Perceptual calibration: comparing two squares side by side is nearly
/// error-free even for adjacent sizes (the paper's Compare achieves
/// τ = 1.0 at group sizes 5 and 10), while rating a square against a
/// remembered scale is much noisier (Rate averages τ ≈ 0.78).
pub fn squares_dataset(truth: &mut GroundTruth, n: usize) -> SquaresDataset {
    assert!(n > 0, "need at least one square");
    truth.define_dimension(
        AREA,
        DimensionParams {
            ambiguity: 0.012,
            rating_noise_mult: 10.0,
            pure_noise: false,
        },
    );
    let mut items = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut urls = Vec::with_capacity(n);
    for i in 0..n {
        let side = 20 + 3 * i as u64;
        let item = truth.new_item();
        truth.set_score(item, AREA, (side * side) as f64);
        items.push(item);
        labels.push(format!("{side}x{side}"));
        urls.push(format!("https://data.example/squares/{side}.png"));
    }
    SquaresDataset {
        items,
        labels,
        urls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_correct_areas() {
        let mut gt = GroundTruth::new();
        let ds = squares_dataset(&mut gt, 40);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.labels[0], "20x20");
        assert_eq!(ds.labels[39], "137x137");
        assert_eq!(gt.score(ds.items[0], AREA), Some(400.0));
        assert_eq!(gt.score(ds.items[39], AREA), Some((137.0f64).powi(2)));
    }

    #[test]
    fn true_order_is_area_descending() {
        let mut gt = GroundTruth::new();
        let ds = squares_dataset(&mut gt, 10);
        let order = gt.true_order(&ds.items, AREA);
        assert_eq!(order, ds.true_order_desc());
    }

    #[test]
    fn score_range_spans_min_max() {
        let mut gt = GroundTruth::new();
        let ds = squares_dataset(&mut gt, 5);
        let (lo, hi) = gt.score_range(AREA).unwrap();
        assert_eq!(lo, 400.0);
        assert_eq!(hi, (32.0f64).powi(2));
        let _ = ds;
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_squares_rejected() {
        let mut gt = GroundTruth::new();
        squares_dataset(&mut gt, 0);
    }

    #[test]
    fn adjacent_relative_gap_shrinks() {
        // The tightest discrimination is at the large end; document the
        // dataset property the perception model relies on.
        let mut gt = GroundTruth::new();
        let ds = squares_dataset(&mut gt, 40);
        let s = |i: usize| gt.score(ds.items[i], AREA).unwrap();
        let (lo, hi) = gt.score_range(AREA).unwrap();
        let gap_small = (s(1) - s(0)) / (hi - lo);
        let gap_large = (s(39) - s(38)) / (hi - lo);
        assert!(gap_small < gap_large * 3.0 && gap_large > 0.02);
    }
}
