//! # qurk-data
//!
//! The evaluation datasets of *Human-powered Sorts and Joins* (Marcus
//! et al., VLDB 2011), rebuilt as synthetic generators over the
//! `qurk-crowd` ground-truth oracle:
//!
//! * [`squares`] — §4.2.1: N squares of side `20 + 3i` pixels sorted by
//!   area; the objectively-correct microbenchmark workload.
//! * [`animals`] — §4.2.1: 25 animals plus a rock and a dandelion, with
//!   latent scores for *adult size* (Q2), *dangerousness* (Q3), the
//!   deliberately ambiguous *belongs on Saturn* (Q4) and a pure-noise
//!   control (Q5).
//! * [`celebrity`] — §3.3.1: the celebrity join. Two tables (`celeb`
//!   profile photos, `photos` award-night photos) with one image per
//!   celebrity each, plus the gender / hair-color / skin-color features
//!   used for feature filtering, including hair dye ambiguity and
//!   photo-to-photo feature drift.
//! * [`movie`] — §5.1: 211 movie stills and five actor headshots for
//!   the end-to-end query (`numInScene` filter, `inScene` join,
//!   `quality` sort).
//!
//! Each generator returns the item handles *and* fills in a
//! [`GroundTruth`](qurk_crowd::GroundTruth) the simulated workers
//! perceive through noise. Item labels/URLs are synthesized so the
//! datasets can also be loaded as relational tables.

pub mod animals;
pub mod celebrity;
pub mod movie;
pub mod squares;

pub use animals::{animals_dataset, AnimalsDataset, ANIMALS};
pub use celebrity::{celebrity_dataset, CelebrityConfig, CelebrityDataset};
pub use movie::{movie_dataset, MovieConfig, MovieDataset};
pub use squares::{squares_dataset, SquaresDataset};
