//! The end-to-end movie dataset (§5.1).
//!
//! "The dataset was created by extracting 211 stills at one second
//! intervals from a three-minute movie; actor profile photos came from
//! the Web." The query joins actors to scenes where the actor is the
//! main focus, pre-filtered by a `numInScene` feature whose `== 1`
//! selectivity the paper measured at 55%, and orders each actor's
//! scenes by how flattering they are (a highly subjective `quality`
//! dimension where Rate performs as well as Compare, §5.2).
//!
//! Note: the paper's SQL shows `POSSIBLY numInScene(scenes.img) > 1`,
//! but its stated intent ("frames containing only the actor", a filter
//! that *reduces* join input, selectivity 55%) corresponds to
//! `numInScene == 1`; we implement the intent and flag the typo in
//! EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qurk_crowd::truth::{DimensionParams, FeatureTruth};
use qurk_crowd::{EntityId, GroundTruth, ItemId};

/// Feature name for the people-count extraction.
pub const NUM_IN_SCENE: &str = "numInScene";
/// Options for the feature (§5.1 lists 0, 1, 2, 3+, UNKNOWN).
pub const NUM_IN_SCENE_OPTIONS: [&str; 4] = ["0", "1", "2", "3+"];
/// The subjective sort dimension.
pub const QUALITY: &str = "quality";

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct MovieConfig {
    pub num_scenes: usize,
    pub num_actors: usize,
    /// Probability a scene contains exactly one person (the paper
    /// measured the filter's selectivity at 55%).
    pub solo_scene_probability: f64,
    /// Probability a solo scene features one of the known actors as
    /// its main focus (the rest show extras or unrecognizable shots,
    /// so they pass the filter but match nobody — this is what keeps
    /// the paper's ORDER BY input at ~55 scenes despite 116 passing
    /// the filter).
    pub featured_fraction: f64,
    pub seed: u64,
}

impl Default for MovieConfig {
    fn default() -> Self {
        MovieConfig {
            num_scenes: 211,
            num_actors: 5,
            solo_scene_probability: 0.55,
            featured_fraction: 0.5,
            seed: 0x30F1E,
        }
    }
}

/// One movie scene.
#[derive(Debug, Clone)]
pub struct Scene {
    pub item: ItemId,
    /// Second offset in the film (stills at 1s intervals).
    pub second: usize,
    /// Ground-truth people count bucket: index into
    /// [`NUM_IN_SCENE_OPTIONS`].
    pub num_in_scene: usize,
    /// If the scene shows exactly one actor as the main focus, which
    /// actor (index into `actors`).
    pub featured_actor: Option<usize>,
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct MovieDataset {
    pub scenes: Vec<Scene>,
    /// Actor headshot items, one per actor.
    pub actor_items: Vec<ItemId>,
    pub actor_names: Vec<String>,
}

impl MovieDataset {
    /// Scenes that truly pass the `numInScene == 1` filter.
    pub fn solo_scenes(&self) -> Vec<&Scene> {
        self.scenes.iter().filter(|s| s.num_in_scene == 1).collect()
    }

    /// Ground-truth (actor_item, scene_item) join pairs.
    pub fn true_matches(&self) -> Vec<(ItemId, ItemId)> {
        self.scenes
            .iter()
            .filter_map(|s| s.featured_actor.map(|a| (self.actor_items[a], s.item)))
            .collect()
    }
}

/// Generate the movie dataset into `truth`.
pub fn movie_dataset(truth: &mut GroundTruth, config: &MovieConfig) -> MovieDataset {
    assert!(config.num_actors >= 1, "need actors");
    assert!(config.num_scenes >= 1, "need scenes");
    let mut rng = StdRng::seed_from_u64(config.seed);

    truth.define_feature(NUM_IN_SCENE, &NUM_IN_SCENE_OPTIONS);
    // Scene quality is highly subjective: large side-by-side ambiguity,
    // and rating is *no worse* than comparing (§5.2: "in such cases
    // Rate works just as well as Compare").
    truth.define_dimension(
        QUALITY,
        DimensionParams {
            ambiguity: 0.35,
            rating_noise_mult: 1.0,
            pure_noise: false,
        },
    );
    truth.set_default_similarity(0.08);

    // Actors: entity per actor; a pair of lookalikes ("some actors look
    // similar", §5.2) gets elevated similarity.
    let mut actor_items = Vec::with_capacity(config.num_actors);
    let mut actor_names = Vec::with_capacity(config.num_actors);
    for a in 0..config.num_actors {
        let item = truth.new_item();
        truth.set_entity(item, EntityId(1000 + a as u64));
        actor_items.push(item);
        actor_names.push(format!("actor-{a}"));
    }
    if config.num_actors >= 2 {
        truth.set_similarity(EntityId(1000), EntityId(1001), 0.35);
    }

    // Screen-time distribution: protagonist-heavy.
    let mut weights: Vec<f64> = (0..config.num_actors)
        .map(|a| 1.0 / (a as f64 + 1.0))
        .collect();
    let wsum: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= wsum;
    }

    let mut scenes = Vec::with_capacity(config.num_scenes);
    for second in 0..config.num_scenes {
        let item = truth.new_item();
        let u: f64 = rng.random();
        // Buckets: solo at the configured rate; remainder split over
        // 0 / 2 / 3+ with empty frames rare.
        let num_in_scene = if u < config.solo_scene_probability {
            1
        } else if u < config.solo_scene_probability + 0.08 {
            0
        } else if u < config.solo_scene_probability + 0.30 {
            2
        } else {
            3
        };
        // numInScene answers were "very accurate ... no errors" (§5.2):
        // crisp report distribution, tiny UNKNOWN mass.
        truth.set_feature(
            item,
            NUM_IN_SCENE,
            FeatureTruth {
                value: num_in_scene,
                report_probs: {
                    let mut v = vec![0.01; NUM_IN_SCENE_OPTIONS.len()];
                    v[num_in_scene] = 0.96;
                    v.push(0.01); // UNKNOWN
                    v
                },
            },
        );

        let featured_actor = if num_in_scene == 1 && rng.random::<f64>() < config.featured_fraction
        {
            // Weighted pick among the known actors.
            let draw: f64 = rng.random();
            let mut acc = 0.0;
            let mut pick = 0;
            for (a, &w) in weights.iter().enumerate() {
                acc += w;
                if draw < acc {
                    pick = a;
                    break;
                }
            }
            truth.set_entity(item, EntityId(1000 + pick as u64));
            Some(pick)
        } else {
            None
        };

        // Quality latent score; uniform in [0,1].
        truth.set_score(item, QUALITY, rng.random::<f64>());

        scenes.push(Scene {
            item,
            second,
            num_in_scene,
            featured_actor,
        });
    }

    MovieDataset {
        scenes,
        actor_items,
        actor_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (GroundTruth, MovieDataset) {
        let mut gt = GroundTruth::new();
        let ds = movie_dataset(&mut gt, &MovieConfig::default());
        (gt, ds)
    }

    #[test]
    fn has_211_scenes_and_5_actors() {
        let (_, ds) = build();
        assert_eq!(ds.scenes.len(), 211);
        assert_eq!(ds.actor_items.len(), 5);
    }

    #[test]
    fn solo_selectivity_near_55_percent() {
        let (_, ds) = build();
        let solo = ds.solo_scenes().len() as f64 / ds.scenes.len() as f64;
        assert!((solo - 0.55).abs() < 0.08, "selectivity={solo}");
    }

    #[test]
    fn only_solo_scenes_have_featured_actors() {
        let (gt, ds) = build();
        let mut featured = 0;
        let mut solo = 0;
        for s in &ds.scenes {
            if s.num_in_scene == 1 {
                solo += 1;
                if let Some(a) = s.featured_actor {
                    featured += 1;
                    assert!(gt.same_entity(ds.actor_items[a], s.item));
                }
            } else {
                assert!(s.featured_actor.is_none());
                for &ai in &ds.actor_items {
                    assert!(!gt.same_entity(ai, s.item));
                }
            }
        }
        // Roughly half the solo scenes feature a known actor.
        let frac = featured as f64 / solo as f64;
        assert!((0.35..=0.65).contains(&frac), "featured fraction {frac}");
    }

    #[test]
    fn protagonist_gets_most_screen_time() {
        let (_, ds) = build();
        let mut counts = vec![0usize; 5];
        for s in &ds.scenes {
            if let Some(a) = s.featured_actor {
                counts[a] += 1;
            }
        }
        assert!(counts[0] > counts[4], "counts={counts:?}");
        assert!(counts.iter().sum::<usize>() > 30);
    }

    #[test]
    fn quality_scores_cover_range() {
        let (gt, ds) = build();
        let (lo, hi) = gt.score_range(QUALITY).unwrap();
        assert!(lo < 0.1 && hi > 0.9, "range ({lo}, {hi})");
        let _ = ds;
    }

    #[test]
    fn true_matches_are_featured_scenes() {
        let (_, ds) = build();
        let featured = ds
            .scenes
            .iter()
            .filter(|s| s.featured_actor.is_some())
            .count();
        assert_eq!(ds.true_matches().len(), featured);
        assert!(featured < ds.solo_scenes().len());
    }

    #[test]
    fn deterministic_generation() {
        let (_, a) = build();
        let (_, b) = build();
        let na: Vec<usize> = a.scenes.iter().map(|s| s.num_in_scene).collect();
        let nb: Vec<usize> = b.scenes.iter().map(|s| s.num_in_scene).collect();
        assert_eq!(na, nb);
    }
}
