//! The animals dataset (§4.2.1, §4.2.3).
//!
//! "The animals dataset contains 25 images of randomly chosen animals
//! ranging from ants to humpback whales. In addition, we added an image
//! of a rock and a dandelion to introduce uncertainty."
//!
//! Ground-truth scores are anchored to the paper's own `Compare`
//! results, which it uses as ground truth "for lack of objective
//! measures": the published size / dangerousness / Saturn orderings are
//! reproduced verbatim as latent score ranks, with per-dimension
//! ambiguity rising from size (fairly objective) through dangerousness
//! (subjective) to Saturn (nearly nonsensical) and a pure-noise control
//! (the paper's Q5).

use qurk_crowd::truth::DimensionParams;
use qurk_crowd::{GroundTruth, ItemId};

/// Dimension names for the four animal queries.
pub const SIZE: &str = "adult size";
pub const DANGER: &str = "dangerousness";
pub const SATURN: &str = "belongs on saturn";
pub const RANDOM: &str = "random control";

/// The 27 item names, in the paper's *size* order (smallest first).
pub const ANIMALS: [&str; 27] = [
    "ant",
    "bee",
    "flower",
    "grasshopper",
    "parrot",
    "rock",
    "rat",
    "octopus",
    "skunk",
    "tazmanian devil",
    "turkey",
    "eagle",
    "lemur",
    "hyena",
    "dog",
    "komodo dragon",
    "baboon",
    "wolf",
    "panther",
    "dolphin",
    "elephant seal",
    "moose",
    "tiger",
    "camel",
    "great white shark",
    "hippo",
    "whale",
];

/// The paper's dangerousness ordering (least dangerous first).
pub const DANGER_ORDER: [&str; 27] = [
    "flower",
    "ant",
    "grasshopper",
    "rock",
    "bee",
    "turkey",
    "dolphin",
    "parrot",
    "baboon",
    "rat",
    "tazmanian devil",
    "lemur",
    "camel",
    "octopus",
    "dog",
    "eagle",
    "elephant seal",
    "skunk",
    "hippo",
    "hyena",
    "great white shark",
    "moose",
    "komodo dragon",
    "wolf",
    "tiger",
    "whale",
    "panther",
];

/// The paper's Saturn ordering (least Saturn-suited first); κ for this
/// query is near zero, so the list is only a weak latent signal.
pub const SATURN_ORDER: [&str; 27] = [
    "whale",
    "octopus",
    "dolphin",
    "elephant seal",
    "great white shark",
    "bee",
    "flower",
    "grasshopper",
    "hippo",
    "dog",
    "lemur",
    "wolf",
    "moose",
    "camel",
    "hyena",
    "skunk",
    "tazmanian devil",
    "tiger",
    "baboon",
    "eagle",
    "parrot",
    "turkey",
    "rat",
    "panther",
    "komodo dragon",
    "ant",
    "rock",
];

/// A generated animals dataset.
#[derive(Debug, Clone)]
pub struct AnimalsDataset {
    pub items: Vec<ItemId>,
    pub names: Vec<String>,
    pub urls: Vec<String>,
}

impl AnimalsDataset {
    pub fn item_by_name(&self, name: &str) -> Option<ItemId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.items[i])
    }

    pub fn name_of(&self, item: ItemId) -> Option<&str> {
        self.items
            .iter()
            .position(|&i| i == item)
            .map(|i| self.names[i].as_str())
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

fn rank_scores(order: &[&str]) -> std::collections::HashMap<String, f64> {
    order
        .iter()
        .enumerate()
        .map(|(i, &n)| (n.to_owned(), i as f64))
        .collect()
}

/// Generate the 27-item animals dataset into `truth`.
pub fn animals_dataset(truth: &mut GroundTruth) -> AnimalsDataset {
    // Ambiguity calibration (normalized score units):
    //  - size: mostly objective, τ(Rate vs Compare) high but not 1.
    //  - dangerousness: subjective, noticeably noisier.
    //  - saturn: barely better than random (κ low but > random).
    //  - random: pure noise (Q5).
    truth.define_dimension(
        SIZE,
        DimensionParams {
            ambiguity: 0.05,
            rating_noise_mult: 4.0,
            pure_noise: false,
        },
    );
    truth.define_dimension(
        DANGER,
        DimensionParams {
            ambiguity: 0.11,
            rating_noise_mult: 2.0,
            pure_noise: false,
        },
    );
    truth.define_dimension(
        SATURN,
        DimensionParams {
            ambiguity: 0.55,
            rating_noise_mult: 3.2,
            pure_noise: false,
        },
    );
    truth.define_dimension(RANDOM, DimensionParams::pure_noise());

    let danger = rank_scores(&DANGER_ORDER);
    let saturn = rank_scores(&SATURN_ORDER);

    let mut items = Vec::with_capacity(ANIMALS.len());
    let mut names = Vec::with_capacity(ANIMALS.len());
    let mut urls = Vec::with_capacity(ANIMALS.len());
    for (i, &name) in ANIMALS.iter().enumerate() {
        let item = truth.new_item();
        truth.set_score(item, SIZE, i as f64);
        truth.set_score(item, DANGER, danger[name]);
        truth.set_score(item, SATURN, saturn[name]);
        truth.set_score(item, RANDOM, i as f64); // ignored: pure noise
        items.push(item);
        names.push(name.to_owned());
        urls.push(format!(
            "https://data.example/animals/{}.jpg",
            name.replace(' ', "_")
        ));
    }
    AnimalsDataset { items, names, urls }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_are_permutations_of_each_other() {
        let mut a: Vec<&str> = ANIMALS.to_vec();
        let mut d: Vec<&str> = DANGER_ORDER.to_vec();
        let mut s: Vec<&str> = SATURN_ORDER.to_vec();
        a.sort_unstable();
        d.sort_unstable();
        s.sort_unstable();
        assert_eq!(a, d);
        assert_eq!(a, s);
    }

    #[test]
    fn builds_27_items() {
        let mut gt = GroundTruth::new();
        let ds = animals_dataset(&mut gt);
        assert_eq!(ds.len(), 27);
        assert!(ds.item_by_name("komodo dragon").is_some());
        assert!(ds.item_by_name("unicorn").is_none());
    }

    #[test]
    fn size_order_matches_paper() {
        let mut gt = GroundTruth::new();
        let ds = animals_dataset(&mut gt);
        let order = gt.true_order(&ds.items, SIZE);
        // true_order returns best (largest) first; the paper's list is
        // smallest-first.
        let names: Vec<&str> = order.iter().map(|&i| ds.name_of(i).unwrap()).collect();
        let expect: Vec<&str> = ANIMALS.iter().rev().copied().collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn danger_order_matches_paper() {
        let mut gt = GroundTruth::new();
        let ds = animals_dataset(&mut gt);
        let order = gt.true_order(&ds.items, DANGER);
        let names: Vec<&str> = order.iter().map(|&i| ds.name_of(i).unwrap()).collect();
        let expect: Vec<&str> = DANGER_ORDER.iter().rev().copied().collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn ambiguity_increases_across_queries() {
        let mut gt = GroundTruth::new();
        animals_dataset(&mut gt);
        let size = gt.dimension_params(SIZE).ambiguity;
        let danger = gt.dimension_params(DANGER).ambiguity;
        let saturn = gt.dimension_params(SATURN).ambiguity;
        assert!(size < danger && danger < saturn);
        assert!(gt.dimension_params(RANDOM).pure_noise);
    }

    #[test]
    fn whale_is_biggest_panther_most_dangerous() {
        let mut gt = GroundTruth::new();
        let ds = animals_dataset(&mut gt);
        let whale = ds.item_by_name("whale").unwrap();
        let panther = ds.item_by_name("panther").unwrap();
        assert_eq!(gt.true_order(&ds.items, SIZE)[0], whale);
        assert_eq!(gt.true_order(&ds.items, DANGER)[0], panther);
    }
}
