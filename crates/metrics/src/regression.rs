//! Simple ordinary-least-squares linear regression with significance
//! testing.
//!
//! §3.3.3 of the paper regresses worker accuracy on the number of tasks
//! each worker completed, reporting `R² = 0.028` with `p < .05` and a
//! positive slope — i.e. volume of work explains almost none of the
//! accuracy variance. This module provides exactly that analysis:
//! slope/intercept, R², the slope's t-statistic and a two-sided p-value
//! computed from the Student-t CDF (via the regularized incomplete beta
//! function, implemented here to avoid external dependencies).

/// Errors from [`linear_regression`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressionError {
    /// x and y lengths differ.
    LengthMismatch { left: usize, right: usize },
    /// Need at least 3 points for a slope significance test.
    TooFewPoints(usize),
    /// x has zero variance; the slope is undefined.
    ConstantPredictor,
}

impl std::fmt::Display for RegressionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressionError::LengthMismatch { left, right } => {
                write!(f, "x has {left} points but y has {right}")
            }
            RegressionError::TooFewPoints(n) => write!(f, "need >= 3 points, got {n}"),
            RegressionError::ConstantPredictor => write!(f, "x is constant; slope undefined"),
        }
    }
}

impl std::error::Error for RegressionError {}

/// Result of an OLS fit `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// Fitted slope (β).
    pub slope: f64,
    /// Fitted intercept (α).
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// t-statistic for H₀: slope = 0.
    pub t_statistic: f64,
    /// Two-sided p-value for the slope.
    pub p_value: f64,
    /// Residual degrees of freedom (n − 2).
    pub degrees_of_freedom: usize,
}

impl Regression {
    /// Predicted value at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit `y = a + b x` by ordinary least squares.
///
/// # Errors
/// See [`RegressionError`].
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Result<Regression, RegressionError> {
    if xs.len() != ys.len() {
        return Err(RegressionError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let n = xs.len();
    if n < 3 {
        return Err(RegressionError::TooFewPoints(n));
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;

    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mean_x;
        let dy = ys[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx <= 0.0 {
        return Err(RegressionError::ConstantPredictor);
    }

    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    // Residual sum of squares and R^2.
    let ss_res = (syy - slope * sxy).max(0.0);
    let r_squared = if syy > 0.0 { 1.0 - ss_res / syy } else { 1.0 };

    let df = n - 2;
    let sigma2 = ss_res / df as f64;
    let se_slope = (sigma2 / sxx).sqrt();
    let (t_statistic, p_value) = if se_slope == 0.0 {
        // Perfect fit: infinitely significant (p = 0) unless slope is 0 too.
        if slope == 0.0 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY, 0.0)
        }
    } else {
        let t = slope / se_slope;
        (t, two_sided_t_p_value(t, df as f64))
    };

    Ok(Regression {
        slope,
        intercept,
        r_squared,
        t_statistic,
        p_value,
        degrees_of_freedom: df,
    })
}

/// Two-sided p-value for a Student-t statistic with `df` degrees of
/// freedom: `P(|T| >= |t|) = I_{df/(df+t²)}(df/2, 1/2)` via the
/// regularized incomplete beta function.
pub fn two_sided_t_p_value(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    regularized_incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
#[allow(clippy::excessive_precision)] // published Lanczos coefficients
fn ln_gamma(x: f64) -> f64 {
    // Coefficients from the standard Lanczos(7,9) approximation.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz
/// continued-fraction expansion (Numerical Recipes §6.4).
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation for faster convergence. `<=` (not `<`)
    // guarantees the mirrored call lands strictly inside its own direct
    // branch, so recursion depth is at most 1 (x = 0.5, a = b would
    // otherwise recurse forever).
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - regularized_incomplete_beta(b, a, 1.0 - x)
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let r = linear_regression(&xs, &ys).unwrap();
        assert!((r.slope - 2.0).abs() < 1e-12);
        assert!((r.intercept - 1.0).abs() < 1e-12);
        assert!((r.r_squared - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-9);
    }

    #[test]
    fn noisy_line_approximately_recovered() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x - 0.5 + ((i as f64 * 2.399963).sin() * 0.3))
            .collect();
        let r = linear_regression(&xs, &ys).unwrap();
        assert!((r.slope - 3.0).abs() < 0.05, "slope={}", r.slope);
        assert!(r.r_squared > 0.99);
        assert!(r.p_value < 1e-12);
    }

    #[test]
    fn pure_noise_is_insignificant() {
        // x and a quasi-random y decoupled from x.
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..40).map(|i| ((i * 37 % 17) as f64).sin()).collect();
        let r = linear_regression(&xs, &ys).unwrap();
        assert!(r.r_squared < 0.2, "r2={}", r.r_squared);
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn constant_predictor_rejected() {
        let xs = [2.0, 2.0, 2.0, 2.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(
            linear_regression(&xs, &ys),
            Err(RegressionError::ConstantPredictor)
        );
    }

    #[test]
    fn too_few_points_rejected() {
        assert_eq!(
            linear_regression(&[1.0, 2.0], &[1.0, 2.0]),
            Err(RegressionError::TooFewPoints(2))
        );
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(matches!(
            linear_regression(&[1.0, 2.0, 3.0], &[1.0]),
            Err(RegressionError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn predict_uses_fit() {
        let xs: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 - x).collect();
        let r = linear_regression(&xs, &ys).unwrap();
        assert!((r.predict(10.0) - (-6.0)).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform CDF)
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn t_distribution_reference_values() {
        // Standard normal limit: t=1.96, df large -> p ~ 0.05.
        let p = two_sided_t_p_value(1.96, 1e6);
        assert!((p - 0.05).abs() < 1e-3, "p={p}");
        // t=2.262, df=9 -> p ~ 0.05 (classic table value).
        let p = two_sided_t_p_value(2.262, 9.0);
        assert!((p - 0.05).abs() < 2e-3, "p={p}");
        // t=0 -> p=1.
        assert!((two_sided_t_p_value(0.0, 10.0) - 1.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// R² is always within [0, 1]; p-value within [0, 1].
        #[test]
        fn fit_outputs_bounded(
            xs in prop::collection::vec(-1e3..1e3f64, 3..40),
            noise in prop::collection::vec(-1.0..1.0f64, 3..40),
            slope in -10.0..10.0f64,
        ) {
            let n = xs.len().min(noise.len());
            let xs = &xs[..n];
            let ys: Vec<f64> = xs.iter().zip(&noise[..n])
                .map(|(x, e)| slope * x + e).collect();
            if let Ok(r) = linear_regression(xs, &ys) {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&r.r_squared));
                prop_assert!((0.0..=1.0).contains(&r.p_value));
            }
        }

        /// Shifting y by a constant changes only the intercept.
        #[test]
        fn shift_invariance(
            xs in prop::collection::vec(-1e3..1e3f64, 3..30),
            shift in -100.0..100.0f64,
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x + (x * 0.7).sin()).collect();
            let shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
            if let (Ok(a), Ok(b)) = (linear_regression(&xs, &ys), linear_regression(&xs, &shifted)) {
                prop_assert!((a.slope - b.slope).abs() < 1e-6);
                prop_assert!(((b.intercept - a.intercept) - shift).abs() < 1e-6);
                prop_assert!((a.r_squared - b.r_squared).abs() < 1e-6);
            }
        }
    }
}
