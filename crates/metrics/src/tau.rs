//! Kendall rank correlation.
//!
//! The paper (§4.2) compares sorted lists with Kendall's τ, specifically
//! the **τ-b** variant which allows two items to share a rank. The value
//! lies in `[-1, 1]`: `-1` is inverse correlation, `0` no correlation,
//! `1` perfect correlation.

/// Errors produced by τ computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TauError {
    /// The two rank vectors have different lengths.
    LengthMismatch { left: usize, right: usize },
    /// Fewer than two observations — τ is undefined.
    TooFewItems(usize),
    /// All values tied in one of the vectors — the denominator is zero.
    Degenerate,
}

impl std::fmt::Display for TauError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TauError::LengthMismatch { left, right } => {
                write!(f, "rank vectors differ in length: {left} vs {right}")
            }
            TauError::TooFewItems(n) => write!(f, "need at least 2 items, got {n}"),
            TauError::Degenerate => write!(f, "all values tied; tau-b undefined"),
        }
    }
}

impl std::error::Error for TauError {}

/// Kendall's τ-b between two paired score/rank vectors.
///
/// τ-b handles ties in either vector:
///
/// ```text
/// tau_b = (C - D) / sqrt((n0 - n1)(n0 - n2))
/// ```
///
/// where `C`/`D` are concordant/discordant pair counts, `n0 = n(n-1)/2`,
/// and `n1`/`n2` are the tie corrections `Σ t(t-1)/2` over tie groups of
/// each vector.
///
/// Complexity is O(n²); the paper's datasets (≤ a few hundred items) make
/// the simple implementation preferable to an O(n log n) merge-sort
/// variant. A property test cross-checks the two pair-counting paths.
///
/// # Errors
/// Returns [`TauError`] on mismatched lengths, fewer than 2 items, or a
/// fully-tied (zero-variance) vector.
pub fn kendall_tau_b(xs: &[f64], ys: &[f64]) -> Result<f64, TauError> {
    if xs.len() != ys.len() {
        return Err(TauError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let n = xs.len();
    if n < 2 {
        return Err(TauError::TooFewItems(n));
    }

    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64; // tied in x only
    let mut ties_y = 0i64; // tied in y only
    let mut ties_both = 0i64;

    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i].partial_cmp(&xs[j]);
            let dy = ys[i].partial_cmp(&ys[j]);
            let (Some(dx), Some(dy)) = (dx, dy) else {
                // NaN comparisons count as ties in both dimensions: they
                // carry no ordering information.
                ties_both += 1;
                continue;
            };
            use std::cmp::Ordering::Equal;
            match (dx == Equal, dy == Equal) {
                (true, true) => ties_both += 1,
                (true, false) => ties_x += 1,
                (false, true) => ties_y += 1,
                (false, false) => {
                    if dx == dy {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }

    let n0 = (n as i64) * (n as i64 - 1) / 2;
    let n1 = ties_x + ties_both;
    let n2 = ties_y + ties_both;
    let denom = ((n0 - n1) as f64) * ((n0 - n2) as f64);
    if denom <= 0.0 {
        return Err(TauError::Degenerate);
    }
    Ok((concordant - discordant) as f64 / denom.sqrt())
}

/// τ-b between two *orderings* of the same item set.
///
/// `left` and `right` each list item identifiers from best to worst.
/// Items are matched by value; both orders must be permutations of the
/// same set. This is the form used when comparing a crowd-produced order
/// against ground truth or against another operator's output.
///
/// # Errors
/// [`TauError::LengthMismatch`] if the orders have different lengths or
/// are not permutations of one another (an unmatched item is reported as
/// a length mismatch of the matched prefix).
pub fn tau_between_orders<T: Eq + std::hash::Hash>(
    left: &[T],
    right: &[T],
) -> Result<f64, TauError> {
    if left.len() != right.len() {
        return Err(TauError::LengthMismatch {
            left: left.len(),
            right: right.len(),
        });
    }
    let pos: std::collections::HashMap<&T, usize> =
        right.iter().enumerate().map(|(i, t)| (t, i)).collect();
    let mut xs = Vec::with_capacity(left.len());
    let mut ys = Vec::with_capacity(left.len());
    for (i, item) in left.iter().enumerate() {
        let Some(&j) = pos.get(item) else {
            return Err(TauError::LengthMismatch {
                left: left.len(),
                right: i,
            });
        };
        xs.push(i as f64);
        ys.push(j as f64);
    }
    kendall_tau_b(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_orders_give_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((kendall_tau_b(&xs, &xs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_orders_give_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau_b(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_swap_matches_closed_form() {
        // n=4, one adjacent swap: C=5, D=1, tau = 4/6.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 1.0, 3.0, 4.0];
        assert!((kendall_tau_b(&xs, &ys).unwrap() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ties_shrink_denominator() {
        // y has a tie; compare against scipy.stats.kendalltau reference:
        // x = [1,2,3,4], y = [1,2,2,4] -> tau-b = 0.912870929...
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.0, 2.0, 4.0];
        let t = kendall_tau_b(&xs, &ys).unwrap();
        assert!((t - 0.9128709291752769).abs() < 1e-12, "tau={t}");
    }

    #[test]
    fn all_tied_is_degenerate() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(kendall_tau_b(&xs, &ys), Err(TauError::Degenerate));
    }

    #[test]
    fn length_mismatch_detected() {
        assert!(matches!(
            kendall_tau_b(&[1.0], &[1.0, 2.0]),
            Err(TauError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn too_few_items_detected() {
        assert_eq!(kendall_tau_b(&[1.0], &[1.0]), Err(TauError::TooFewItems(1)));
    }

    #[test]
    fn nan_pairs_count_as_uninformative() {
        // One NaN: pairs with it carry no order info, the remaining pairs
        // are perfectly concordant.
        let xs = [1.0, f64::NAN, 3.0, 4.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let t = kendall_tau_b(&xs, &ys).unwrap();
        assert!(t > 0.7, "tau={t}");
    }

    #[test]
    fn orders_by_item_identity() {
        let a = ["ant", "bee", "cat", "dog"];
        let b = ["ant", "cat", "bee", "dog"];
        let t = tau_between_orders(&a, &b).unwrap();
        assert!((t - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn orders_must_be_permutations() {
        let a = ["ant", "bee"];
        let b = ["ant", "cow"];
        assert!(tau_between_orders(&a, &b).is_err());
    }

    #[test]
    fn tau_is_symmetric() {
        let xs = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.0, 6.0];
        let ys = [2.0, 7.0, 1.0, 8.0, 2.8, 1.8, 2.9, 3.0];
        let a = kendall_tau_b(&xs, &ys).unwrap();
        let b = kendall_tau_b(&ys, &xs).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn partial_shuffle_lies_strictly_between() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut ys = xs.clone();
        ys.swap(0, 19);
        let t = kendall_tau_b(&xs, &ys).unwrap();
        assert!(t > 0.0 && t < 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// τ-b is always within [-1, 1] when defined.
        #[test]
        fn tau_bounded(xs in prop::collection::vec(-1e6..1e6f64, 2..64),
                       ys in prop::collection::vec(-1e6..1e6f64, 2..64)) {
            let n = xs.len().min(ys.len());
            if let Ok(t) = kendall_tau_b(&xs[..n], &ys[..n]) {
                prop_assert!((-1.0..=1.0).contains(&t), "tau out of range: {t}");
            }
        }

        /// Self-correlation of a vector with distinct values is exactly 1.
        #[test]
        fn tau_self_is_one(mut xs in prop::collection::vec(-1e6..1e6f64, 2..64)) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs.dedup();
            if xs.len() >= 2 {
                let t = kendall_tau_b(&xs, &xs).unwrap();
                prop_assert!((t - 1.0).abs() < 1e-12);
            }
        }

        /// Negating one vector negates τ (no ties case).
        #[test]
        fn tau_antisymmetric_under_negation(
            mut xs in prop::collection::vec(-1e6..1e6f64, 2..48),
            seed in any::<u64>())
        {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs.dedup();
            if xs.len() < 2 { return Ok(()); }
            // Deterministic shuffle of ys derived from seed.
            let mut ys = xs.clone();
            let mut s = seed;
            for i in (1..ys.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                ys.swap(i, j);
            }
            let t1 = kendall_tau_b(&xs, &ys).unwrap();
            let neg: Vec<f64> = ys.iter().map(|v| -v).collect();
            let t2 = kendall_tau_b(&xs, &neg).unwrap();
            prop_assert!((t1 + t2).abs() < 1e-9);
        }
    }
}
