//! Kendall rank correlation.
//!
//! The paper (§4.2) compares sorted lists with Kendall's τ, specifically
//! the **τ-b** variant which allows two items to share a rank. The value
//! lies in `[-1, 1]`: `-1` is inverse correlation, `0` no correlation,
//! `1` perfect correlation.
//!
//! Two implementations share one formula: the O(n²) pair-counting
//! reference ([`kendall_tau_b_quadratic`]) and a cache-friendly
//! O(n log n) path using a **non-recursive (bottom-up) merge sort** to
//! count discordant pairs plus run-length scans for the tie
//! corrections. All pair counts are exact integers, so the two paths
//! are bit-identical; [`kendall_tau_b`] picks the merge path for large
//! NaN-free inputs and the reference otherwise.
// lint:hot-path

/// Errors produced by τ computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TauError {
    /// The two rank vectors have different lengths.
    LengthMismatch { left: usize, right: usize },
    /// Fewer than two observations — τ is undefined.
    TooFewItems(usize),
    /// All values tied in one of the vectors — the denominator is zero.
    Degenerate,
}

impl std::fmt::Display for TauError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TauError::LengthMismatch { left, right } => {
                write!(f, "rank vectors differ in length: {left} vs {right}")
            }
            TauError::TooFewItems(n) => write!(f, "need at least 2 items, got {n}"),
            TauError::Degenerate => write!(f, "all values tied; tau-b undefined"),
        }
    }
}

impl std::error::Error for TauError {}

/// Kendall's τ-b between two paired score/rank vectors.
///
/// τ-b handles ties in either vector:
///
/// ```text
/// tau_b = (C - D) / sqrt((n0 - n1)(n0 - n2))
/// ```
///
/// where `C`/`D` are concordant/discordant pair counts, `n0 = n(n-1)/2`,
/// and `n1`/`n2` are the tie corrections `Σ t(t-1)/2` over tie groups of
/// each vector.
///
/// Dispatches to an O(n log n) merge-count for large NaN-free inputs
/// and to the O(n²) reference ([`kendall_tau_b_quadratic`]) for small
/// ones (below [`MERGE_CUTOVER`]) or when NaNs are present (NaN pairs
/// count as ties-in-both, which the merge path does not model). Both
/// paths compute identical integer pair counts, so the result is
/// bit-identical either way; a property test pins that.
///
/// # Errors
/// Returns [`TauError`] on mismatched lengths, fewer than 2 items, or a
/// fully-tied (zero-variance) vector.
pub fn kendall_tau_b(xs: &[f64], ys: &[f64]) -> Result<f64, TauError> {
    if xs.len() != ys.len() {
        return Err(TauError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let n = xs.len();
    if n < 2 {
        return Err(TauError::TooFewItems(n));
    }
    if n >= MERGE_CUTOVER && !xs.iter().chain(ys.iter()).any(|v| v.is_nan()) {
        return kendall_tau_b_merge(xs, ys);
    }
    kendall_tau_b_quadratic(xs, ys)
}

/// Below this size the quadratic path wins (no sort/scratch setup) and
/// above it the merge path does; the exact value only affects speed,
/// never results.
pub const MERGE_CUTOVER: usize = 32;

/// The O(n²) pair-counting reference implementation. Public because
/// `qurk-bench` uses it as the wall-clock baseline, and the property
/// tests cross-check it against the merge path.
pub fn kendall_tau_b_quadratic(xs: &[f64], ys: &[f64]) -> Result<f64, TauError> {
    if xs.len() != ys.len() {
        return Err(TauError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let n = xs.len();
    if n < 2 {
        return Err(TauError::TooFewItems(n));
    }

    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64; // tied in x only
    let mut ties_y = 0i64; // tied in y only
    let mut ties_both = 0i64;

    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i].partial_cmp(&xs[j]);
            let dy = ys[i].partial_cmp(&ys[j]);
            let (Some(dx), Some(dy)) = (dx, dy) else {
                // NaN comparisons count as ties in both dimensions: they
                // carry no ordering information.
                ties_both += 1;
                continue;
            };
            use std::cmp::Ordering::Equal;
            match (dx == Equal, dy == Equal) {
                (true, true) => ties_both += 1,
                (true, false) => ties_x += 1,
                (false, true) => ties_y += 1,
                (false, false) => {
                    if dx == dy {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }

    let n1 = ties_x + ties_both;
    let n2 = ties_y + ties_both;
    tau_from_counts(n, concordant - discordant, n1, n2)
}

/// Final τ-b formula from exact integer pair counts (shared by both
/// paths so they cannot drift apart).
fn tau_from_counts(n: usize, c_minus_d: i64, n1: i64, n2: i64) -> Result<f64, TauError> {
    let n0 = (n as i64) * (n as i64 - 1) / 2;
    let denom = ((n0 - n1) as f64) * ((n0 - n2) as f64);
    if denom <= 0.0 {
        return Err(TauError::Degenerate);
    }
    Ok(c_minus_d as f64 / denom.sqrt())
}

/// O(n log n) τ-b (Knight's algorithm). Inputs are NaN-free with n ≥ 2.
///
/// Sort indices by (x, y); tie corrections n1 (pairs tied in x) and n3
/// (pairs tied in both) fall out of run-length scans of that order, n2
/// (pairs tied in y) from a sort of y alone. Discordant pairs are
/// exactly the strict inversions of y in (x, y)-order, counted by a
/// bottom-up merge sort — within an x-tie run y ascends, so no
/// inversion is counted there, and equal ys merge stably without
/// counting. Then C − D = n0 − n1 − n2 + n3 − 2·D by
/// inclusion–exclusion over tie classes.
fn kendall_tau_b_merge(xs: &[f64], ys: &[f64]) -> Result<f64, TauError> {
    use std::cmp::Ordering;
    let n = xs.len();
    // partial_cmp never sees NaN here; Equal fallback keeps ±0.0 ties
    // identical to the quadratic path (total_cmp would order them).
    let cmp = |a: f64, b: f64| a.partial_cmp(&b).unwrap_or(Ordering::Equal);

    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        cmp(xs[a as usize], xs[b as usize]).then_with(|| cmp(ys[a as usize], ys[b as usize]))
    });

    // Tie corrections from run lengths in (x, y)-order.
    let mut n1 = 0i64; // pairs tied in x (incl. tied in both)
    let mut n3 = 0i64; // pairs tied in both
    let mut i = 0;
    while i < n {
        let xi = xs[idx[i] as usize];
        let mut j = i + 1;
        while j < n && xs[idx[j] as usize] == xi {
            j += 1;
        }
        let t = (j - i) as i64;
        n1 += t * (t - 1) / 2;
        let mut a = i;
        while a < j {
            let ya = ys[idx[a] as usize];
            let mut b = a + 1;
            while b < j && ys[idx[b] as usize] == ya {
                b += 1;
            }
            let t = (b - a) as i64;
            n3 += t * (t - 1) / 2;
            a = b;
        }
        i = j;
    }

    // Discordant pairs = strict inversions of y in (x, y)-order.
    let mut in_x_order: Vec<f64> = idx.iter().map(|&i| ys[i as usize]).collect();
    let discordant = count_inversions(&mut in_x_order);

    // Pairs tied in y (incl. tied in both), from y alone.
    let mut y_sorted = ys.to_vec();
    y_sorted.sort_unstable_by(|&a, &b| cmp(a, b));
    let mut n2 = 0i64;
    let mut i = 0;
    while i < n {
        let yi = y_sorted[i];
        let mut j = i + 1;
        while j < n && y_sorted[j] == yi {
            j += 1;
        }
        let t = (j - i) as i64;
        n2 += t * (t - 1) / 2;
        i = j;
    }

    let n0 = (n as i64) * (n as i64 - 1) / 2;
    let c_minus_d = n0 - n1 - n2 + n3 - 2 * discordant;
    tau_from_counts(n, c_minus_d, n1, n2)
}

/// Strict inversion count via **non-recursive** (bottom-up) merge
/// sort: doubling run widths sweep the array sequentially — no call
/// stack, one reused scratch buffer, cache-friendly streaming merges.
/// `vals` is sorted ascending on return.
fn count_inversions(vals: &mut Vec<f64>) -> i64 {
    let n = vals.len();
    let mut buf = vec![0.0f64; n];
    let mut inversions = 0i64;
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid && j < hi {
                if vals[j] < vals[i] {
                    // vals[j] jumps ahead of every element left in the
                    // left run: each is a strict inversion.
                    inversions += (mid - i) as i64;
                    buf[k] = vals[j];
                    j += 1;
                } else {
                    buf[k] = vals[i];
                    i += 1;
                }
                k += 1;
            }
            buf[k..k + (mid - i)].copy_from_slice(&vals[i..mid]);
            let k = k + (mid - i);
            buf[k..k + (hi - j)].copy_from_slice(&vals[j..hi]);
            lo = hi;
        }
        std::mem::swap(vals, &mut buf);
        width *= 2;
    }
    inversions
}

/// τ-b between two *orderings* of the same item set.
///
/// `left` and `right` each list item identifiers from best to worst.
/// Items are matched by value; both orders must be permutations of the
/// same set. This is the form used when comparing a crowd-produced order
/// against ground truth or against another operator's output.
///
/// # Errors
/// [`TauError::LengthMismatch`] if the orders have different lengths or
/// are not permutations of one another (an unmatched item is reported as
/// a length mismatch of the matched prefix).
pub fn tau_between_orders<T: Eq + std::hash::Hash>(
    left: &[T],
    right: &[T],
) -> Result<f64, TauError> {
    if left.len() != right.len() {
        return Err(TauError::LengthMismatch {
            left: left.len(),
            right: right.len(),
        });
    }
    let pos: std::collections::HashMap<&T, usize> =
        right.iter().enumerate().map(|(i, t)| (t, i)).collect();
    let mut xs = Vec::with_capacity(left.len());
    let mut ys = Vec::with_capacity(left.len());
    for (i, item) in left.iter().enumerate() {
        let Some(&j) = pos.get(item) else {
            return Err(TauError::LengthMismatch {
                left: left.len(),
                right: i,
            });
        };
        xs.push(i as f64);
        ys.push(j as f64);
    }
    kendall_tau_b(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_orders_give_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((kendall_tau_b(&xs, &xs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_orders_give_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau_b(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_swap_matches_closed_form() {
        // n=4, one adjacent swap: C=5, D=1, tau = 4/6.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 1.0, 3.0, 4.0];
        assert!((kendall_tau_b(&xs, &ys).unwrap() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ties_shrink_denominator() {
        // y has a tie; compare against scipy.stats.kendalltau reference:
        // x = [1,2,3,4], y = [1,2,2,4] -> tau-b = 0.912870929...
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.0, 2.0, 4.0];
        let t = kendall_tau_b(&xs, &ys).unwrap();
        assert!((t - 0.9128709291752769).abs() < 1e-12, "tau={t}");
    }

    #[test]
    fn all_tied_is_degenerate() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(kendall_tau_b(&xs, &ys), Err(TauError::Degenerate));
    }

    #[test]
    fn length_mismatch_detected() {
        assert!(matches!(
            kendall_tau_b(&[1.0], &[1.0, 2.0]),
            Err(TauError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn too_few_items_detected() {
        assert_eq!(kendall_tau_b(&[1.0], &[1.0]), Err(TauError::TooFewItems(1)));
    }

    #[test]
    fn nan_pairs_count_as_uninformative() {
        // One NaN: pairs with it carry no order info, the remaining pairs
        // are perfectly concordant.
        let xs = [1.0, f64::NAN, 3.0, 4.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let t = kendall_tau_b(&xs, &ys).unwrap();
        assert!(t > 0.7, "tau={t}");
    }

    #[test]
    fn orders_by_item_identity() {
        let a = ["ant", "bee", "cat", "dog"];
        let b = ["ant", "cat", "bee", "dog"];
        let t = tau_between_orders(&a, &b).unwrap();
        assert!((t - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn orders_must_be_permutations() {
        let a = ["ant", "bee"];
        let b = ["ant", "cow"];
        assert!(tau_between_orders(&a, &b).is_err());
    }

    #[test]
    fn tau_is_symmetric() {
        let xs = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.0, 6.0];
        let ys = [2.0, 7.0, 1.0, 8.0, 2.8, 1.8, 2.9, 3.0];
        let a = kendall_tau_b(&xs, &ys).unwrap();
        let b = kendall_tau_b(&ys, &xs).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn partial_shuffle_lies_strictly_between() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut ys = xs.clone();
        ys.swap(0, 19);
        let t = kendall_tau_b(&xs, &ys).unwrap();
        assert!(t > 0.0 && t < 1.0);
    }

    /// Deterministic pseudo-random vector with plenty of ties.
    fn lcg_vec(n: usize, seed: u64, modulo: u64) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) % modulo) as f64
            })
            .collect()
    }

    #[test]
    fn merge_path_matches_quadratic_bit_for_bit() {
        for n in [MERGE_CUTOVER, 100, 257, 1000] {
            for seed in 1..4u64 {
                // modulo 7 forces heavy ties in both vectors.
                let xs = lcg_vec(n, seed, 7);
                let ys = lcg_vec(n, seed ^ 0xdead_beef, 7);
                assert_eq!(
                    kendall_tau_b(&xs, &ys),
                    kendall_tau_b_quadratic(&xs, &ys),
                    "n={n} seed={seed}"
                );
                // Distinct values too.
                let xs = lcg_vec(n, seed + 10, u64::MAX / 2);
                let ys = lcg_vec(n, seed + 20, u64::MAX / 2);
                assert_eq!(kendall_tau_b(&xs, &ys), kendall_tau_b_quadratic(&xs, &ys));
            }
        }
    }

    #[test]
    fn merge_path_degenerate_all_tied() {
        let xs = vec![1.0; 64];
        let ys = lcg_vec(64, 3, 1000);
        assert_eq!(kendall_tau_b(&xs, &ys), Err(TauError::Degenerate));
    }

    #[test]
    fn nan_inputs_take_the_reference_path_at_any_size() {
        let mut xs = lcg_vec(128, 5, 50);
        let ys = lcg_vec(128, 6, 50);
        xs[64] = f64::NAN;
        assert_eq!(kendall_tau_b(&xs, &ys), kendall_tau_b_quadratic(&xs, &ys));
    }

    #[test]
    fn count_inversions_sorts_and_counts() {
        let mut v = vec![3.0, 1.0, 2.0, 1.0];
        // Inversions: (3,1),(3,2),(3,1),(2,1) = 4; equal pair (1,1) not counted.
        assert_eq!(count_inversions(&mut v), 4);
        assert_eq!(v, vec![1.0, 1.0, 2.0, 3.0]);
        let mut sorted = vec![1.0, 2.0, 3.0];
        assert_eq!(count_inversions(&mut sorted), 0);
        let mut empty: Vec<f64> = Vec::new();
        assert_eq!(count_inversions(&mut empty), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// τ-b is always within [-1, 1] when defined.
        #[test]
        fn tau_bounded(xs in prop::collection::vec(-1e6..1e6f64, 2..64),
                       ys in prop::collection::vec(-1e6..1e6f64, 2..64)) {
            let n = xs.len().min(ys.len());
            if let Ok(t) = kendall_tau_b(&xs[..n], &ys[..n]) {
                prop_assert!((-1.0..=1.0).contains(&t), "tau out of range: {t}");
            }
        }

        /// Self-correlation of a vector with distinct values is exactly 1.
        #[test]
        fn tau_self_is_one(mut xs in prop::collection::vec(-1e6..1e6f64, 2..64)) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs.dedup();
            if xs.len() >= 2 {
                let t = kendall_tau_b(&xs, &xs).unwrap();
                prop_assert!((t - 1.0).abs() < 1e-12);
            }
        }

        /// The merge path and the quadratic reference agree exactly —
        /// same Ok value bit-for-bit or same error — on arbitrary
        /// inputs (ties included via coarse rounding).
        #[test]
        fn merge_equals_quadratic(
            xs in prop::collection::vec(-50..50i32, 32..200),
            ys in prop::collection::vec(-50..50i32, 32..200))
        {
            let n = xs.len().min(ys.len());
            let xs: Vec<f64> = xs[..n].iter().map(|&v| v as f64).collect();
            let ys: Vec<f64> = ys[..n].iter().map(|&v| v as f64).collect();
            prop_assert_eq!(kendall_tau_b(&xs, &ys), kendall_tau_b_quadratic(&xs, &ys));
        }

        /// Negating one vector negates τ (no ties case).
        #[test]
        fn tau_antisymmetric_under_negation(
            mut xs in prop::collection::vec(-1e6..1e6f64, 2..48),
            seed in any::<u64>())
        {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs.dedup();
            if xs.len() < 2 { return Ok(()); }
            // Deterministic shuffle of ys derived from seed.
            let mut ys = xs.clone();
            let mut s = seed;
            for i in (1..ys.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                ys.swap(i, j);
            }
            let t1 = kendall_tau_b(&xs, &ys).unwrap();
            let neg: Vec<f64> = ys.iter().map(|v| -v).collect();
            let t2 = kendall_tau_b(&xs, &neg).unwrap();
            prop_assert!((t1 + t2).abs() < 1e-9);
        }
    }
}
