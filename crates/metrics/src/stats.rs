//! Summary statistics and percentiles.
//!
//! Figure 4 of the paper reports the completion time of the 50th, 95th
//! and 100th percentile *assignment* for each join variant; Table 4
//! reports means and standard deviations of κ over repeated samples.
//! These helpers centralize that arithmetic.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (n − 1 denominator). Returns `None` for
/// fewer than two observations.
pub fn sample_std(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some((ss / (xs.len() - 1) as f64).sqrt())
}

/// Population variance (n denominator). Returns `None` for an empty slice.
pub fn population_variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Percentile by linear interpolation between closest ranks
/// (the "exclusive" convention used by most latency dashboards).
///
/// `p` is in `[0, 100]`. Returns `None` for an empty slice. The input
/// need not be sorted.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// A one-pass summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    /// Sample standard deviation; 0.0 when count < 2.
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p100: f64,
}

/// Summarize a sample (count, mean, std, min/max, latency percentiles).
/// Returns `None` for an empty slice.
pub fn summary(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let mean_v = mean(xs)?;
    let std_v = sample_std(xs).unwrap_or(0.0);
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        count: xs.len(),
        mean: mean_v,
        std: std_v,
        min,
        max,
        p50: percentile(xs, 50.0)?,
        p95: percentile(xs, 95.0)?,
        p100: max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn std_of_known_values() {
        // Sample std of [2,4,4,4,5,5,7,9] with n-1: ~2.138
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = sample_std(&xs).unwrap();
        assert!((s - 2.13809).abs() < 1e-4, "std={s}");
        assert_eq!(sample_std(&[1.0]), None);
    }

    #[test]
    fn population_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_variance(&xs).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        // p is clamped
        assert_eq!(percentile(&xs, 150.0), Some(4.0));
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 95.0), Some(7.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs = [5.0, 1.0, 3.0];
        let s = summary(&xs).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p100, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!(summary(&[]).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Percentiles are monotone in p and bracketed by min/max.
        #[test]
        fn percentile_monotone(xs in prop::collection::vec(-1e6..1e6f64, 1..64)) {
            let p50 = percentile(&xs, 50.0).unwrap();
            let p95 = percentile(&xs, 95.0).unwrap();
            let p100 = percentile(&xs, 100.0).unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(p50 <= p95 + 1e-9);
            prop_assert!(p95 <= p100 + 1e-9);
            prop_assert!(min <= p50 + 1e-9);
        }

        /// mean is translation-equivariant; std translation-invariant.
        #[test]
        fn translation_properties(
            xs in prop::collection::vec(-1e3..1e3f64, 2..64),
            c in -1e3..1e3f64,
        ) {
            let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
            let dm = mean(&shifted).unwrap() - mean(&xs).unwrap();
            prop_assert!((dm - c).abs() < 1e-6);
            let ds = sample_std(&shifted).unwrap() - sample_std(&xs).unwrap();
            prop_assert!(ds.abs() < 1e-6);
        }
    }
}
