//! Fleiss' κ inter-rater reliability, plus the paper's modified variant.
//!
//! §3.2 uses standard Fleiss' κ \[Fleiss 1971\] to decide whether a join
//! feature filter (gender / hair color / skin color) is too ambiguous to
//! trust: κ below a small positive threshold drops the filter. Table 4
//! reports κ per feature and shows 25% samples estimate the full-data κ
//! well.
//!
//! §4.2.3 (footnote 4) applies κ to sort *comparison* votes, but finds
//! the per-category prior compensation misbehaves because comparator
//! outcomes are correlated; the paper removes the compensating factor
//! (the denominator), i.e. reports `P̄ − P̄ₑ` instead of
//! `(P̄ − P̄ₑ)/(1 − P̄ₑ)`. That is [`modified_fleiss_kappa`].

// lint:hot-path

/// Errors produced by κ computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KappaError {
    /// No subjects (rows) were supplied.
    NoSubjects,
    /// A subject has fewer than two ratings; pairwise agreement is
    /// undefined for it.
    TooFewRatings { subject: usize, ratings: usize },
    /// Rows must all have the same number of categories.
    RaggedCategories { subject: usize },
    /// Expected agreement is 1 (all raters always chose one category);
    /// the standard κ denominator is zero.
    Degenerate,
}

impl std::fmt::Display for KappaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KappaError::NoSubjects => write!(f, "no subjects supplied"),
            KappaError::TooFewRatings { subject, ratings } => {
                write!(f, "subject {subject} has {ratings} ratings; need >= 2")
            }
            KappaError::RaggedCategories { subject } => {
                write!(f, "subject {subject} has a different category count")
            }
            KappaError::Degenerate => {
                write!(f, "all ratings in a single category; kappa undefined")
            }
        }
    }
}

impl std::error::Error for KappaError {}

/// Count matrix accessor: `counts[subject][category]` = number of raters
/// assigning `category` to `subject`.
///
/// Unlike the textbook presentation, the number of raters may vary per
/// subject (crowd workers rate overlapping but not identical record
/// sets); the generalized formula weights each subject's agreement by its
/// own rater count, following Fleiss' treatment for unequal `n_i`.
fn validate(counts: &[Vec<u32>]) -> Result<usize, KappaError> {
    if counts.is_empty() {
        return Err(KappaError::NoSubjects);
    }
    let k = counts[0].len();
    for (i, row) in counts.iter().enumerate() {
        if row.len() != k {
            return Err(KappaError::RaggedCategories { subject: i });
        }
        let n: u32 = row.iter().sum();
        if n < 2 {
            return Err(KappaError::TooFewRatings {
                subject: i,
                ratings: n as usize,
            });
        }
    }
    Ok(k)
}

/// Mean observed pairwise agreement `P̄` and chance agreement `P̄ₑ`
/// over an iterator of per-subject count rows (shared by the nested
/// and the flat [`CountMatrix`] entry points — same arithmetic, same
/// order).
fn agreement_components_rows<'a>(
    rows: impl Iterator<Item = &'a [u32]>,
    k: usize,
    num_subjects: usize,
) -> (f64, f64) {
    let mut p_bar = 0.0f64;
    let mut category_totals = vec![0.0f64; k];
    let mut grand_total = 0.0f64;

    for row in rows {
        let n: u32 = row.iter().sum();
        let n = n as f64;
        // P_i = (sum n_ij^2 - n) / (n (n - 1))
        let sum_sq: f64 = row.iter().map(|&c| (c as f64) * (c as f64)).sum();
        p_bar += (sum_sq - n) / (n * (n - 1.0));
        for (j, &c) in row.iter().enumerate() {
            category_totals[j] += c as f64;
        }
        grand_total += n;
    }
    p_bar /= num_subjects as f64;

    let p_e: f64 = category_totals
        .iter()
        .map(|t| {
            let p = t / grand_total;
            p * p
        })
        .sum();
    (p_bar, p_e)
}

fn agreement_components(counts: &[Vec<u32>]) -> Result<(f64, f64), KappaError> {
    let k = validate(counts)?;
    Ok(agreement_components_rows(
        counts.iter().map(Vec::as_slice),
        k,
        counts.len(),
    ))
}

/// Standard Fleiss' κ over a subjects × categories count matrix.
///
/// `counts[i][j]` is the number of raters who assigned category `j` to
/// subject `i`. Values near 1 indicate strong agreement, near 0 chance
/// level, negative values systematic disagreement.
///
/// # Errors
/// See [`KappaError`]; in particular a matrix where every rating falls in
/// one category yields [`KappaError::Degenerate`] (the chance agreement is
/// already 1 and the statistic is undefined).
pub fn fleiss_kappa(counts: &[Vec<u32>]) -> Result<f64, KappaError> {
    let (p_bar, p_e) = agreement_components(counts)?;
    let denom = 1.0 - p_e;
    if denom.abs() < 1e-12 {
        return Err(KappaError::Degenerate);
    }
    Ok((p_bar - p_e) / denom)
}

/// The paper's modified κ for sort-comparison data: `P̄ − P̄ₑ`.
///
/// Footnote 4 of the paper: traditional Fleiss' κ "calculates priors for
/// each label to compensate for bias in the dataset … this doesn't work
/// well for sort-based comparator data due to correlation between
/// comparator values, and so we removed the compensating factor (the
/// denominator in Fleiss' κ)."
///
/// For purely random votes this is ≈ 0; for perfect agreement it is
/// `1 − P̄ₑ` (bounded above by 1 but usually ≤ 0.5 for balanced binary
/// comparisons). Only the *relative* ordering across queries matters for
/// the paper's Figure 6 signal.
pub fn modified_fleiss_kappa(counts: &[Vec<u32>]) -> Result<f64, KappaError> {
    let (p_bar, p_e) = agreement_components(counts)?;
    Ok(p_bar - p_e)
}

/// Build a κ count matrix from per-subject label assignments.
///
/// `labels[i]` holds every rater's categorical answer for subject `i`,
/// where answers are small category indices in `0..num_categories`.
/// Subjects with fewer than two answers are dropped (a lone vote carries
/// no agreement information), mirroring how Qurk assembles κ input from
/// incomplete assignment sets.
/// Flat subjects × categories count matrix.
///
/// The cache-friendly κ input: one contiguous `Vec<u32>` instead of a
/// heap row per subject, and [`Self::fill_from_labels`] reuses the
/// buffer across calls — callers that recompute κ every HIT round
/// (feature filters, sort ambiguity) keep one matrix alive and refill
/// it with zero steady-state allocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CountMatrix {
    num_categories: usize,
    data: Vec<u32>,
}

impl CountMatrix {
    pub fn new(num_categories: usize) -> CountMatrix {
        CountMatrix {
            num_categories,
            data: Vec::new(),
        }
    }

    /// Rebuild from per-subject label assignments, reusing the
    /// existing buffer. Same semantics as [`counts_from_labels`]:
    /// subjects with fewer than two answers are dropped.
    pub fn fill_from_labels(&mut self, labels: &[Vec<usize>], num_categories: usize) {
        self.num_categories = num_categories;
        self.data.clear();
        for row in labels.iter().filter(|row| row.len() >= 2) {
            let start = self.data.len();
            self.data.resize(start + num_categories, 0);
            for &l in row {
                assert!(
                    l < num_categories,
                    "label {l} out of range {num_categories}"
                );
                self.data[start + l] += 1;
            }
        }
    }

    pub fn num_subjects(&self) -> usize {
        self.data
            .len()
            .checked_div(self.num_categories)
            .unwrap_or(0)
    }

    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Count rows, one `&[u32]` per subject (zero-copy).
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks(self.num_categories.max(1))
    }

    fn components(&self) -> Result<(f64, f64), KappaError> {
        if self.is_empty() {
            return Err(KappaError::NoSubjects);
        }
        for (i, row) in self.rows().enumerate() {
            let n: u32 = row.iter().sum();
            if n < 2 {
                return Err(KappaError::TooFewRatings {
                    subject: i,
                    ratings: n as usize,
                });
            }
        }
        Ok(agreement_components_rows(
            self.rows(),
            self.num_categories,
            self.num_subjects(),
        ))
    }
}

/// [`fleiss_kappa`] over a flat [`CountMatrix`] — identical arithmetic
/// in identical order, without the per-subject heap rows.
pub fn fleiss_kappa_flat(counts: &CountMatrix) -> Result<f64, KappaError> {
    let (p_bar, p_e) = counts.components()?;
    let denom = 1.0 - p_e;
    if denom.abs() < 1e-12 {
        return Err(KappaError::Degenerate);
    }
    Ok((p_bar - p_e) / denom)
}

/// [`modified_fleiss_kappa`] over a flat [`CountMatrix`].
pub fn modified_fleiss_kappa_flat(counts: &CountMatrix) -> Result<f64, KappaError> {
    let (p_bar, p_e) = counts.components()?;
    Ok(p_bar - p_e)
}

pub fn counts_from_labels(labels: &[Vec<usize>], num_categories: usize) -> Vec<Vec<u32>> {
    labels
        .iter()
        .filter(|row| row.len() >= 2)
        .map(|row| {
            let mut c = vec![0u32; num_categories];
            for &l in row {
                assert!(
                    l < num_categories,
                    "label {l} out of range {num_categories}"
                );
                c[l] += 1;
            }
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from Fleiss (1971): 10 subjects, 5 categories,
    /// 14 raters each; κ ≈ 0.2099.
    #[test]
    fn fleiss_1971_worked_example() {
        let counts = vec![
            vec![0, 0, 0, 0, 14],
            vec![0, 2, 6, 4, 2],
            vec![0, 0, 3, 5, 6],
            vec![0, 3, 9, 2, 0],
            vec![2, 2, 8, 1, 1],
            vec![7, 7, 0, 0, 0],
            vec![3, 2, 6, 3, 0],
            vec![2, 5, 3, 2, 2],
            vec![6, 5, 2, 1, 0],
            vec![0, 2, 2, 3, 7],
        ];
        let k = fleiss_kappa(&counts).unwrap();
        assert!((k - 0.20993).abs() < 1e-4, "kappa={k}");
    }

    #[test]
    fn perfect_agreement_across_categories_is_one() {
        // Two categories used overall, each subject unanimous.
        let counts = vec![vec![5, 0], vec![0, 5], vec![5, 0], vec![0, 5]];
        let k = fleiss_kappa(&counts).unwrap();
        assert!((k - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_category_everywhere_is_degenerate() {
        let counts = vec![vec![5, 0], vec![5, 0]];
        assert_eq!(fleiss_kappa(&counts), Err(KappaError::Degenerate));
    }

    #[test]
    fn even_split_is_negative() {
        // Every subject maximally disagreed: observed agreement below chance.
        let counts = vec![vec![3, 3], vec![3, 3], vec![3, 3]];
        let k = fleiss_kappa(&counts).unwrap();
        assert!(k < 0.0, "kappa={k}");
    }

    #[test]
    fn modified_kappa_zero_for_chance() {
        // Large balanced random-ish matrix: P_bar ~ P_e.
        let counts = vec![vec![3, 3]; 50];
        let m = modified_fleiss_kappa(&counts).unwrap();
        // P_bar for an even 3/3 split: (9+9-6)/(6*5)=0.4; P_e=0.5 => -0.1
        assert!((m + 0.1).abs() < 1e-12, "modified={m}");
    }

    #[test]
    fn modified_kappa_upper_bound_for_binary_perfect_agreement() {
        let counts = vec![vec![5, 0], vec![0, 5]];
        let m = modified_fleiss_kappa(&counts).unwrap();
        // P_bar = 1, P_e = 0.5 (balanced categories) -> 0.5
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unequal_rater_counts_supported() {
        let counts = vec![vec![4, 0], vec![0, 2], vec![3, 1]];
        let k = fleiss_kappa(&counts).unwrap();
        assert!(k > 0.0 && k < 1.0, "kappa={k}");
    }

    #[test]
    fn ragged_rows_rejected() {
        let counts = vec![vec![4, 0], vec![0, 2, 0]];
        assert_eq!(
            fleiss_kappa(&counts),
            Err(KappaError::RaggedCategories { subject: 1 })
        );
    }

    #[test]
    fn lone_vote_rejected() {
        let counts = vec![vec![1, 0]];
        assert_eq!(
            fleiss_kappa(&counts),
            Err(KappaError::TooFewRatings {
                subject: 0,
                ratings: 1
            })
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(fleiss_kappa(&[]), Err(KappaError::NoSubjects));
    }

    #[test]
    fn counts_from_labels_builds_and_filters() {
        let labels = vec![vec![0, 0, 1], vec![1], vec![1, 1]];
        let counts = counts_from_labels(&labels, 2);
        assert_eq!(counts, vec![vec![2, 1], vec![0, 2]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn counts_from_labels_panics_on_bad_label() {
        counts_from_labels(&[vec![0, 5]], 2);
    }

    fn matrix_from_nested(counts: &[Vec<u32>]) -> CountMatrix {
        let k = counts.first().map(Vec::len).unwrap_or(0);
        CountMatrix {
            num_categories: k,
            data: counts.iter().flatten().copied().collect(),
        }
    }

    #[test]
    fn flat_kappa_matches_nested_exactly() {
        let counts = vec![
            vec![0, 0, 0, 0, 14],
            vec![0, 2, 6, 4, 2],
            vec![0, 0, 3, 5, 6],
            vec![2, 2, 8, 1, 1],
        ];
        let m = matrix_from_nested(&counts);
        assert_eq!(m.num_subjects(), 4);
        assert_eq!(m.num_categories(), 5);
        // Bit-identical, not just approximately equal: same arithmetic
        // in the same order.
        assert_eq!(
            fleiss_kappa(&counts).unwrap(),
            fleiss_kappa_flat(&m).unwrap()
        );
        assert_eq!(
            modified_fleiss_kappa(&counts).unwrap(),
            modified_fleiss_kappa_flat(&m).unwrap()
        );
    }

    #[test]
    fn flat_kappa_error_paths() {
        assert_eq!(
            fleiss_kappa_flat(&CountMatrix::new(2)),
            Err(KappaError::NoSubjects)
        );
        let lone = matrix_from_nested(&[vec![1, 0]]);
        assert_eq!(
            fleiss_kappa_flat(&lone),
            Err(KappaError::TooFewRatings {
                subject: 0,
                ratings: 1
            })
        );
        let degenerate = matrix_from_nested(&[vec![5, 0], vec![5, 0]]);
        assert_eq!(fleiss_kappa_flat(&degenerate), Err(KappaError::Degenerate));
    }

    #[test]
    fn fill_from_labels_reuses_buffer_and_matches() {
        let labels = vec![vec![0, 0, 1], vec![1], vec![1, 1]];
        let mut m = CountMatrix::new(2);
        m.fill_from_labels(&labels, 2);
        let nested = counts_from_labels(&labels, 2);
        assert_eq!(m, matrix_from_nested(&nested));
        // Refill with different data: old contents fully replaced.
        m.fill_from_labels(&[vec![0, 1, 1, 1]], 2);
        assert_eq!(m.num_subjects(), 1);
        assert_eq!(m.rows().next().unwrap(), &[1, 3]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn count_matrix() -> impl Strategy<Value = Vec<Vec<u32>>> {
        (2usize..5).prop_flat_map(|k| {
            prop::collection::vec(
                prop::collection::vec(0u32..6, k..=k)
                    .prop_filter("need >=2 ratings", |row| row.iter().sum::<u32>() >= 2),
                1..30,
            )
        })
    }

    proptest! {
        /// Standard κ never exceeds 1 and the modified variant is bounded
        /// by the standard one's numerator geometry.
        #[test]
        fn kappa_bounds(counts in count_matrix()) {
            if let Ok(k) = fleiss_kappa(&counts) {
                prop_assert!(k <= 1.0 + 1e-9, "kappa={k}");
            }
            if let Ok(m) = modified_fleiss_kappa(&counts) {
                prop_assert!((-1.0..=1.0).contains(&m), "modified={m}");
            }
        }

        /// Duplicating every subject leaves both statistics unchanged.
        #[test]
        fn kappa_invariant_under_subject_duplication(counts in count_matrix()) {
            let mut doubled = counts.clone();
            doubled.extend(counts.iter().cloned());
            match (fleiss_kappa(&counts), fleiss_kappa(&doubled)) {
                (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-9),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "inconsistent: {a:?} vs {b:?}"),
            }
        }

        /// The flat CountMatrix path is bit-identical to the nested
        /// path on every input (same arithmetic, different layout).
        #[test]
        fn flat_matches_nested(counts in count_matrix()) {
            let k = counts[0].len();
            let mut m = CountMatrix::new(k);
            m.num_categories = k;
            m.data = counts.iter().flatten().copied().collect();
            prop_assert_eq!(fleiss_kappa(&counts), fleiss_kappa_flat(&m));
            prop_assert_eq!(
                modified_fleiss_kappa(&counts),
                modified_fleiss_kappa_flat(&m)
            );
        }

        /// Permuting category columns (consistently across subjects)
        /// leaves κ unchanged.
        #[test]
        fn kappa_invariant_under_category_relabel(counts in count_matrix()) {
            let k = counts[0].len();
            let perm: Vec<usize> = (0..k).rev().collect();
            let relabeled: Vec<Vec<u32>> = counts
                .iter()
                .map(|row| perm.iter().map(|&j| row[j]).collect())
                .collect();
            match (fleiss_kappa(&counts), fleiss_kappa(&relabeled)) {
                (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-9),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "inconsistent: {a:?} vs {b:?}"),
            }
        }
    }
}
