//! Rank-assignment helpers.
//!
//! Converting scores (mean ratings, head-to-head win counts) into rank
//! vectors is a recurring step before computing τ. Ties must be handled
//! consistently: τ-b expects *average ranks* for tied groups, while some
//! reports use *dense ranks*.

// lint:hot-path

/// Reusable scratch for [`average_ranks_into`]: callers ranking scores
/// every HIT round (hybrid sorts, report builders) keep one of these
/// alive instead of allocating an index permutation per call.
#[derive(Debug, Clone, Default)]
pub struct RankScratch {
    idx: Vec<usize>,
}

/// Assign average ranks (1-based) to `scores`, higher score = better
/// (rank 1). Tied values share the mean of the ranks they span —
/// the convention required for τ-b to treat them as ties.
pub fn average_ranks(scores: &[f64]) -> Vec<f64> {
    let mut ranks = Vec::new();
    average_ranks_into(scores, &mut RankScratch::default(), &mut ranks);
    ranks
}

/// [`average_ranks`] writing into a caller-owned output buffer with
/// caller-owned scratch — zero steady-state allocation when both are
/// reused across calls.
pub fn average_ranks_into(scores: &[f64], scratch: &mut RankScratch, ranks: &mut Vec<f64>) {
    let n = scores.len();
    let idx = &mut scratch.idx;
    idx.clear();
    idx.extend(0..n);
    // Sort descending by score; NaNs sink to the end deterministically.
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or_else(|| b.cmp(&a))
    });
    ranks.clear();
    ranks.resize(n, 0.0);
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
}

/// Assign dense ranks (1-based): tied values share a rank and the next
/// distinct value gets the next integer.
pub fn dense_ranks(scores: &[f64]) -> Vec<usize> {
    let n = scores.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or_else(|| b.cmp(&a))
    });
    let mut ranks = vec![0usize; n];
    let mut rank = 0usize;
    let mut prev: Option<f64> = None;
    for &i in &idx {
        if prev != Some(scores[i]) {
            rank += 1;
            prev = Some(scores[i]);
        }
        ranks[i] = rank;
    }
    ranks
}

/// Given a best-to-worst ordering of items, return each item's 0-based
/// position keyed by the item itself. Useful for building τ inputs from
/// two orderings of the same set.
pub fn rank_of_items<T: Eq + std::hash::Hash + Clone>(
    order: &[T],
) -> std::collections::HashMap<T, usize> {
    order
        .iter()
        .enumerate()
        // lint:allow(hot-clone): generic key owned by the returned map
        .map(|(i, t)| (t.clone(), i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_ranks_no_ties() {
        // Higher score -> rank 1.
        let r = average_ranks(&[10.0, 30.0, 20.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn average_ranks_with_tie_group() {
        // scores: 5, 5, 3 -> the two 5s occupy ranks 1 and 2 -> 1.5 each.
        let r = average_ranks(&[5.0, 5.0, 3.0]);
        assert_eq!(r, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn average_ranks_all_tied() {
        let r = average_ranks(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(r, vec![2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn dense_ranks_compact() {
        let r = dense_ranks(&[5.0, 5.0, 3.0, 1.0]);
        assert_eq!(r, vec![1, 1, 2, 3]);
    }

    #[test]
    fn rank_of_items_positions() {
        let m = rank_of_items(&["a", "b", "c"]);
        assert_eq!(m["a"], 0);
        assert_eq!(m["c"], 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(average_ranks(&[]).is_empty());
        assert!(dense_ranks(&[]).is_empty());
    }

    #[test]
    fn into_variant_reuses_buffers_across_calls() {
        let mut scratch = RankScratch::default();
        let mut ranks = Vec::new();
        average_ranks_into(&[5.0, 5.0, 3.0], &mut scratch, &mut ranks);
        assert_eq!(ranks, vec![1.5, 1.5, 3.0]);
        // Second call with different length: output fully replaced.
        average_ranks_into(&[10.0, 30.0, 20.0, 40.0], &mut scratch, &mut ranks);
        assert_eq!(ranks, vec![4.0, 2.0, 3.0, 1.0]);
        average_ranks_into(&[], &mut scratch, &mut ranks);
        assert!(ranks.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Average ranks sum to n(n+1)/2 regardless of ties.
        #[test]
        fn average_ranks_sum_invariant(xs in prop::collection::vec(-100i32..100, 1..64)) {
            let xs: Vec<f64> = xs.into_iter().map(|v| v as f64).collect();
            let ranks = average_ranks(&xs);
            let n = xs.len() as f64;
            let sum: f64 = ranks.iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        }

        /// Dense ranks are contiguous from 1 to the number of distinct values.
        #[test]
        fn dense_ranks_contiguous(xs in prop::collection::vec(-100i32..100, 1..64)) {
            let xs: Vec<f64> = xs.into_iter().map(|v| v as f64).collect();
            let ranks = dense_ranks(&xs);
            let mut distinct = xs.clone();
            distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
            distinct.dedup();
            let max = *ranks.iter().max().unwrap();
            prop_assert_eq!(max, distinct.len());
            for r in 1..=max {
                prop_assert!(ranks.contains(&r), "missing rank {}", r);
            }
        }

        /// Higher score never gets a numerically larger (worse) average rank.
        #[test]
        fn average_ranks_order_consistent(xs in prop::collection::vec(-100i32..100, 2..64)) {
            let xs: Vec<f64> = xs.into_iter().map(|v| v as f64).collect();
            let ranks = average_ranks(&xs);
            for i in 0..xs.len() {
                for j in 0..xs.len() {
                    if xs[i] > xs[j] {
                        prop_assert!(ranks[i] < ranks[j]);
                    }
                }
            }
        }
    }
}
