//! # qurk-metrics
//!
//! Statistical metrics used by the Qurk crowd-powered query engine
//! (reproduction of *Human-powered Sorts and Joins*, Marcus et al.,
//! VLDB 2011).
//!
//! The paper relies on a small set of signals to decide how to run (or
//! whether to abandon) crowd-powered sorts and joins:
//!
//! * [Kendall's τ-b](tau::kendall_tau_b) — rank correlation between two
//!   orderings, tie-aware. Used to compare `Rate` output against
//!   `Compare` output (§4.2) and hybrid-sort progress (Figure 7).
//! * [Fleiss' κ](kappa::fleiss_kappa) — inter-rater reliability on
//!   categorical labels. Used to detect ambiguous join feature filters
//!   (§3.2, Table 4).
//! * [Modified Fleiss' κ](kappa::modified_fleiss_kappa) — the paper's
//!   variant with the chance-compensation denominator removed, used on
//!   sort comparison votes (§4.2.3 footnote 4, Figure 6).
//! * [Ordinary least squares](regression::linear_regression) — the
//!   worker-volume vs. accuracy regression of §3.3.3 (R² = 0.028,
//!   positive slope, p < .05).
//! * [Percentiles / summaries](stats) — latency reporting (Figure 4).
//!
//! All functions are pure and deterministic; they operate on plain
//! slices so they can be reused outside the engine.

pub mod kappa;
pub mod rank;
pub mod regression;
pub mod stats;
pub mod tau;

pub use kappa::{
    fleiss_kappa, fleiss_kappa_flat, modified_fleiss_kappa, modified_fleiss_kappa_flat,
    CountMatrix, KappaError,
};
pub use rank::{average_ranks, average_ranks_into, dense_ranks, rank_of_items, RankScratch};
pub use regression::{linear_regression, Regression, RegressionError};
pub use stats::{mean, percentile, sample_std, summary, Summary};
pub use tau::{kendall_tau_b, kendall_tau_b_quadratic, tau_between_orders, TauError};
