//! # qurk-combine
//!
//! Answer-combination strategies for crowd-powered query operators
//! (reproduction of *Human-powered Sorts and Joins*, Marcus et al.,
//! VLDB 2011, §2.1 and §3.3).
//!
//! Qurk sends every HIT to several workers (5 by default) and must fuse
//! their responses into one answer. Two combiners are provided:
//!
//! * [`vote::majority_vote`] — the baseline
//!   `MajorityVote` combiner: most popular answer wins.
//! * [`em::QualityAdjust`] — the paper's `QualityAdjust`
//!   combiner, the EM algorithm of Ipeirotis, Provost & Wang (HCOMP
//!   2010) building on Dawid & Skene (1979): it jointly estimates each
//!   worker's confusion matrix (capturing *bias*, e.g. a worker who
//!   systematically answers "No") and each item's label posterior, and
//!   scores workers by the expected cost of their answers so spammers
//!   can be identified. The paper runs 5 EM iterations and penalizes
//!   false negatives twice as heavily as false positives; both knobs are
//!   exposed here.
//!
//! Generative (free-text) answers are normalized before combination
//! (§2.2) by a [`normalize::Normalizer`] such as
//! [`normalize::LowercaseSingleSpace`].

pub mod em;
pub mod normalize;
pub mod vote;

pub use em::{LabelObservation, QualityAdjust, QualityAdjustConfig, QualityAdjustOutput};
pub use normalize::{normalize_lowercase_single_space, Normalizer};
pub use vote::{majority_vote, majority_vote_bool, mean_rating, weighted_vote, VoteOutcome};
