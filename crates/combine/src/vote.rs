//! Majority voting and simple aggregation.
//!
//! `MajorityVote` is Qurk's default `Combiner` (§2.1): the most popular
//! answer wins. For join pairs the paper phrases it as "we identify a
//! join pair if the number of positive votes outweighs the negative
//! votes" — i.e. strict majority of Yes over No, ties resolving to No
//! ([`majority_vote_bool`]). Ratings are combined by taking the mean of
//! the scores (§4.1.2, [`mean_rating`]).

use std::collections::HashMap;
use std::hash::Hash;

/// Outcome of a categorical vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteOutcome<T> {
    /// The winning answer, if any vote was cast.
    pub winner: Option<T>,
    /// Number of votes the winner received.
    pub winner_votes: usize,
    /// Total votes cast.
    pub total_votes: usize,
    /// Whether the top count was shared by more than one answer
    /// (the winner is then the smallest such answer by `Ord` if
    /// available, otherwise arbitrary-but-deterministic insertion order).
    pub tied: bool,
}

impl<T> VoteOutcome<T> {
    /// Fraction of votes won by the winner (0 when no votes).
    pub fn confidence(&self) -> f64 {
        if self.total_votes == 0 {
            0.0
        } else {
            self.winner_votes as f64 / self.total_votes as f64
        }
    }
}

/// Plurality vote over categorical answers.
///
/// Deterministic: among tied answers the one that *first reached* the
/// top count wins, which makes the combiner independent of HashMap
/// iteration order.
pub fn majority_vote<T: Eq + Hash + Clone>(votes: &[T]) -> VoteOutcome<T> {
    let mut counts: HashMap<&T, usize> = HashMap::with_capacity(votes.len());
    let mut winner: Option<&T> = None;
    let mut winner_votes = 0usize;
    let mut tied = false;
    for v in votes {
        let c = counts.entry(v).or_insert(0);
        *c += 1;
        match (*c).cmp(&winner_votes) {
            std::cmp::Ordering::Greater => {
                winner_votes = *c;
                tied = false;
                if winner != Some(v) {
                    winner = Some(v);
                }
            }
            std::cmp::Ordering::Equal => {
                if winner != Some(v) {
                    tied = true;
                }
            }
            std::cmp::Ordering::Less => {}
        }
    }
    VoteOutcome {
        winner: winner.cloned(),
        winner_votes,
        total_votes: votes.len(),
        tied,
    }
}

/// Binary majority vote with the paper's join semantics: the pair joins
/// iff positive votes strictly outnumber negative votes.
pub fn majority_vote_bool(votes: &[bool]) -> bool {
    let yes = votes.iter().filter(|&&v| v).count();
    yes * 2 > votes.len()
}

/// Weighted plurality vote. Weights typically come from worker quality
/// estimates (e.g. `1 − spammer_score`). Ties break toward the answer
/// that first attained the maximum.
pub fn weighted_vote<T: Eq + Hash + Clone>(votes: &[(T, f64)]) -> Option<T> {
    let mut totals: HashMap<&T, f64> = HashMap::with_capacity(votes.len());
    let mut best: Option<&T> = None;
    let mut best_w = f64::NEG_INFINITY;
    for (v, w) in votes {
        let t = totals.entry(v).or_insert(0.0);
        *t += w;
        if *t > best_w {
            best_w = *t;
            best = Some(v);
        }
    }
    best.cloned()
}

/// Mean of numeric ratings; `None` when empty. §4.1.2: "compute the mean
/// of all ratings for each item, and sort the dataset using these means."
pub fn mean_rating(ratings: &[f64]) -> Option<f64> {
    if ratings.is_empty() {
        None
    } else {
        Some(ratings.iter().sum::<f64>() / ratings.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_majority() {
        let o = majority_vote(&["yes", "no", "yes", "yes", "no"]);
        assert_eq!(o.winner, Some("yes"));
        assert_eq!(o.winner_votes, 3);
        assert_eq!(o.total_votes, 5);
        assert!(!o.tied);
        assert!((o.confidence() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_votes() {
        let o = majority_vote::<&str>(&[]);
        assert_eq!(o.winner, None);
        assert_eq!(o.confidence(), 0.0);
    }

    #[test]
    fn tie_detected_and_first_leader_wins() {
        let o = majority_vote(&["a", "b"]);
        assert!(o.tied);
        assert_eq!(o.winner, Some("a"));
        // Order matters for the deterministic tie-break:
        let o = majority_vote(&["b", "a"]);
        assert_eq!(o.winner, Some("b"));
    }

    #[test]
    fn tie_resolved_by_later_votes() {
        let o = majority_vote(&["a", "b", "b"]);
        assert!(!o.tied);
        assert_eq!(o.winner, Some("b"));
    }

    #[test]
    fn bool_vote_requires_strict_majority() {
        assert!(majority_vote_bool(&[true, true, false]));
        assert!(!majority_vote_bool(&[true, false])); // tie -> No
        assert!(!majority_vote_bool(&[false, false, true]));
        assert!(!majority_vote_bool(&[]));
    }

    #[test]
    fn weighted_vote_uses_weights() {
        let w = weighted_vote(&[("yes", 0.4), ("no", 0.9), ("yes", 0.4)]);
        assert_eq!(w, Some("no")); // 0.9 > 0.8
        let w = weighted_vote(&[("yes", 0.5), ("no", 0.9), ("yes", 0.5)]);
        assert_eq!(w, Some("yes")); // 1.0 > 0.9
    }

    #[test]
    fn weighted_vote_empty() {
        assert_eq!(weighted_vote::<&str>(&[]), None);
    }

    #[test]
    fn mean_rating_basic() {
        assert_eq!(mean_rating(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean_rating(&[]), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The winner's count is the max count, and confidence is in (0,1].
        #[test]
        fn winner_has_max_count(votes in prop::collection::vec(0u8..5, 1..64)) {
            let o = majority_vote(&votes);
            let w = o.winner.unwrap();
            let max = (0u8..5).map(|c| votes.iter().filter(|&&v| v == c).count()).max().unwrap();
            prop_assert_eq!(o.winner_votes, max);
            prop_assert_eq!(o.winner_votes, votes.iter().filter(|&&v| v == w).count());
            prop_assert!(o.confidence() > 0.0 && o.confidence() <= 1.0);
        }

        /// Permuting votes never changes the winning *count* and only
        /// changes the winner when there was a tie.
        #[test]
        fn permutation_stability(votes in prop::collection::vec(0u8..4, 1..32)) {
            let a = majority_vote(&votes);
            let mut rev = votes.clone();
            rev.reverse();
            let b = majority_vote(&rev);
            prop_assert_eq!(a.winner_votes, b.winner_votes);
            if !a.tied {
                prop_assert_eq!(a.winner, b.winner);
            }
        }

        /// Bool majority matches the categorical combiner's semantics on
        /// strict majorities.
        #[test]
        fn bool_and_categorical_agree(votes in prop::collection::vec(any::<bool>(), 1..32)) {
            let yes = votes.iter().filter(|&&v| v).count();
            let no = votes.len() - yes;
            if yes != no {
                let o = majority_vote(&votes);
                prop_assert_eq!(o.winner, Some(yes > no));
                prop_assert_eq!(majority_vote_bool(&votes), yes > no);
            }
        }
    }
}
