//! `QualityAdjust`: the Dawid–Skene / Ipeirotis EM combiner.
//!
//! The paper (§2.1) implements "the method described by Ipeirotis et
//! al. \[6\]", which "identifies spammers and worker bias, and
//! iteratively adjusts answer confidence accordingly in an
//! ExpectationMaximization-like fashion". Concretely (Ipeirotis, Provost
//! & Wang, *Quality management on Amazon Mechanical Turk*, HCOMP 2010,
//! building on Dawid & Skene 1979):
//!
//! 1. **E-step** — given per-worker confusion matrices `π_w[k][l]`
//!    (probability worker `w` answers `l` when the true label is `k`)
//!    and class priors `p[k]`, compute each item's label posterior.
//! 2. **M-step** — re-estimate `π_w` and `p` from the posteriors.
//! 3. **Spam scoring** — each worker's answers are converted to *soft
//!    labels*; the expected misclassification cost of those soft labels,
//!    normalized by the cost of a prior-emitting spammer, yields a score
//!    in which ≈0 is a perfect worker and ≥1 indistinguishable from
//!    spam. Bias (e.g. a worker who systematically inverts answers) is
//!    *corrected* rather than punished: an inverted confusion matrix
//!    still produces informative posteriors.
//!
//! The paper runs **5 iterations** on join data and penalizes false
//! negatives twice as heavily as false positives; see
//! [`QualityAdjustConfig::iterations`] and
//! [`QualityAdjustConfig::cost`].
//!
//! ## Layout
//!
//! EM is the machine-side hot loop (it runs once per HIT round), so
//! internally everything is flat: posteriors are one `num_items × k`
//! buffer, confusion matrices one `num_workers × k × k` buffer, votes
//! a CSR-style `(offsets, flat votes)` pair, and the per-item E-step
//! scratch is reused across items and iterations — no allocation
//! inside the EM loop. The arithmetic is performed in exactly the
//! same order as the reference nested-`Vec` formulation (kept as
//! `qurk-bench`'s baseline), so results are bit-identical; only the
//! memory layout changed. The public [`QualityAdjustOutput`] keeps
//! the nested shape, converted once at the end.
// lint:hot-path

/// One worker response: `worker` assigned `label` to `item`.
///
/// Identifiers are dense indices assigned by the caller (Qurk's executor
/// interns Turker IDs and tuple pair keys before invoking the combiner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelObservation {
    pub worker: usize,
    pub item: usize,
    pub label: usize,
}

/// Misclassification cost matrix: `cost[true_label][decided_label]`.
///
/// The diagonal must be zero. For the paper's join setting with labels
/// `{0 = no-match, 1 = match}` and false negatives twice as costly:
/// `cost[1][0] = 2.0`, `cost[0][1] = 1.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix(Vec<Vec<f64>>);

impl CostMatrix {
    /// Uniform 0/1 loss over `k` labels.
    pub fn zero_one(k: usize) -> Self {
        let mut m = vec![vec![1.0; k]; k];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        CostMatrix(m)
    }

    /// Binary matrix with asymmetric penalties. `false_negative` is the
    /// cost of deciding 0 when truth is 1; `false_positive` the reverse.
    pub fn binary(false_positive: f64, false_negative: f64) -> Self {
        CostMatrix(vec![vec![0.0, false_positive], vec![false_negative, 0.0]])
    }

    /// The paper's join configuration: FN cost 2, FP cost 1.
    pub fn paper_join() -> Self {
        Self::binary(1.0, 2.0)
    }

    /// Cost of deciding `decided` when the truth is `truth`.
    #[inline]
    pub fn get(&self, truth: usize, decided: usize) -> f64 {
        self.0[truth][decided]
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.0.len()
    }
}

/// Configuration for [`QualityAdjust`].
#[derive(Debug, Clone)]
pub struct QualityAdjustConfig {
    /// Number of labels (categories).
    pub num_labels: usize,
    /// EM iterations; the paper uses 5.
    pub iterations: usize,
    /// Laplace smoothing added to confusion-matrix counts so unseen
    /// (worker, label) cells keep nonzero probability.
    pub smoothing: f64,
    /// Decision-time misclassification costs.
    pub cost: CostMatrix,
}

impl QualityAdjustConfig {
    /// Binary labels, 5 iterations, paper's asymmetric join costs.
    pub fn paper_join() -> Self {
        QualityAdjustConfig {
            num_labels: 2,
            iterations: 5,
            smoothing: 0.01,
            cost: CostMatrix::paper_join(),
        }
    }

    /// `k` labels, 5 iterations, 0/1 loss.
    pub fn categorical(k: usize) -> Self {
        QualityAdjustConfig {
            num_labels: k,
            iterations: 5,
            smoothing: 0.01,
            cost: CostMatrix::zero_one(k),
        }
    }
}

/// Result of running the EM combiner.
#[derive(Debug, Clone)]
pub struct QualityAdjustOutput {
    /// `posteriors[item][k]` = P(true label of `item` is `k`).
    pub posteriors: Vec<Vec<f64>>,
    /// Cost-minimizing decision per item.
    pub decisions: Vec<usize>,
    /// `confusion[worker][k][l]` = P(worker answers l | truth k).
    pub confusion: Vec<Vec<Vec<f64>>>,
    /// Estimated class priors.
    pub priors: Vec<f64>,
    /// Per-worker spam score: ≈0 perfect, ≥1 spam-equivalent.
    pub spammer_score: Vec<f64>,
    /// Number of observations consumed per worker.
    pub worker_answer_counts: Vec<usize>,
}

impl QualityAdjustOutput {
    /// Convenience: decision for `item` as a bool (label 1 = true).
    pub fn decision_bool(&self, item: usize) -> bool {
        self.decisions[item] == 1
    }

    /// Workers whose spam score exceeds `threshold` (Ipeirotis suggests
    /// values near 1 indicate spam; Qurk's §6 discussion bans such
    /// workers in non-experimental deployments).
    pub fn spammers(&self, threshold: f64) -> Vec<usize> {
        self.spammer_score
            .iter()
            .enumerate()
            .filter(|(w, &s)| s >= threshold && self.worker_answer_counts[*w] > 0)
            .map(|(w, _)| w)
            .collect()
    }
}

/// The `QualityAdjust` combiner.
#[derive(Debug, Clone)]
pub struct QualityAdjust {
    config: QualityAdjustConfig,
}

impl QualityAdjust {
    pub fn new(config: QualityAdjustConfig) -> Self {
        assert!(config.num_labels >= 2, "need at least two labels");
        assert_eq!(
            config.cost.num_labels(),
            config.num_labels,
            "cost matrix size must match num_labels"
        );
        QualityAdjust { config }
    }

    /// Run EM over the observations.
    ///
    /// Item/worker indices may be sparse; missing items get uniform
    /// posteriors and the prior-based decision. Panics if any label is
    /// out of range.
    pub fn run(&self, observations: &[LabelObservation]) -> QualityAdjustOutput {
        let k = self.config.num_labels;
        let num_items = observations.iter().map(|o| o.item + 1).max().unwrap_or(0);
        let num_workers = observations.iter().map(|o| o.worker + 1).max().unwrap_or(0);
        for o in observations {
            assert!(o.label < k, "label {} out of range {k}", o.label);
        }

        // Group observations by item, CSR-style: `votes[offsets[i]..
        // offsets[i+1]]` are item i's (worker, label) pairs, in input
        // order — one flat buffer instead of a Vec per item.
        let mut offsets = vec![0usize; num_items + 1];
        for o in observations {
            offsets[o.item + 1] += 1;
        }
        for i in 0..num_items {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets[..num_items].to_vec();
        let mut votes = vec![(0usize, 0usize); observations.len()];
        for o in observations {
            votes[cursor[o.item]] = (o.worker, o.label);
            cursor[o.item] += 1;
        }
        let item_votes = |item: usize| &votes[offsets[item]..offsets[item + 1]];

        let mut worker_answer_counts = vec![0usize; num_workers];
        for o in observations {
            worker_answer_counts[o.worker] += 1;
        }

        // --- Initialization: posteriors from raw vote proportions. ---
        // `posteriors[item*k..][..k]` is item's distribution (flat).
        let mut posteriors = vec![1e-9f64; num_items * k];
        for item in 0..num_items {
            let row = &mut posteriors[item * k..(item + 1) * k];
            for &(_, l) in item_votes(item) {
                row[l] += 1.0;
            }
            normalize_in_place(row);
        }

        // `confusion[(w*k + t)*k + l]` = π_w[t][l] (flat k×k per worker).
        let mut confusion = vec![0.0f64; num_workers * k * k];
        let mut priors = vec![1.0 / k as f64; k];
        // E-step scratch, reused across items and iterations.
        let mut log_p = vec![0.0f64; k];

        for _ in 0..self.config.iterations {
            // --- M-step: confusion matrices and priors. ---
            let s = self.config.smoothing;
            confusion.fill(s);
            for item in 0..num_items {
                for &(w, l) in item_votes(item) {
                    let base = w * k * k;
                    for t in 0..k {
                        confusion[base + t * k + l] += posteriors[item * k + t];
                    }
                }
            }
            for row in confusion.chunks_mut(k) {
                normalize_in_place(row);
            }
            priors.fill(s);
            for post in posteriors.chunks(k) {
                for (t, &p) in post.iter().enumerate() {
                    priors[t] += p;
                }
            }
            normalize_in_place(&mut priors);

            // --- E-step: item posteriors (log space for stability). ---
            for item in 0..num_items {
                let vs = item_votes(item);
                let row = &mut posteriors[item * k..(item + 1) * k];
                if vs.is_empty() {
                    // In-place copy — no per-item allocation.
                    row.copy_from_slice(&priors);
                    continue;
                }
                for (t, lp) in log_p.iter_mut().enumerate() {
                    *lp = priors[t].max(1e-300).ln();
                }
                for &(w, l) in vs {
                    let base = w * k * k;
                    for (t, lp) in log_p.iter_mut().enumerate() {
                        *lp += confusion[base + t * k + l].max(1e-300).ln();
                    }
                }
                let max = log_p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                for lp in log_p.iter_mut() {
                    *lp = (*lp - max).exp();
                }
                normalize_in_place(&mut log_p);
                row.copy_from_slice(&log_p);
            }
        }

        // --- Decisions: minimize expected cost. ---
        let decisions: Vec<usize> = (0..num_items)
            .map(|item| self.min_cost_decision(&posteriors[item * k..(item + 1) * k]))
            .collect();

        // --- Spam scores. ---
        let spammer_score =
            self.spam_scores(&confusion, &priors, num_workers, &worker_answer_counts);

        QualityAdjustOutput {
            posteriors: posteriors.chunks(k).map(<[f64]>::to_vec).collect(),
            decisions,
            confusion: (0..num_workers)
                .map(|w| {
                    (0..k)
                        .map(|t| confusion[(w * k + t) * k..(w * k + t + 1) * k].to_vec())
                        .collect()
                })
                .collect(),
            priors,
            spammer_score,
            worker_answer_counts,
        }
    }

    /// The decision minimizing `Σ_t posterior[t] · cost[t][decision]`.
    fn min_cost_decision(&self, posterior: &[f64]) -> usize {
        let k = self.config.num_labels;
        (0..k)
            .min_by(|&a, &b| {
                let ca: f64 = posterior
                    .iter()
                    .enumerate()
                    .map(|(t, p)| p * self.config.cost.get(t, a))
                    .sum();
                let cb: f64 = posterior
                    .iter()
                    .enumerate()
                    .map(|(t, p)| p * self.config.cost.get(t, b))
                    .sum();
                ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("k >= 2")
    }

    /// Ipeirotis spam score: the expected cost of the *soft label*
    /// induced by each answer the worker gives, normalized by the
    /// expected cost of always emitting the prior distribution (the
    /// best a zero-information spammer can do).
    fn spam_scores(
        &self,
        confusion: &[f64], // flat: [(w*k + t)*k + l]
        priors: &[f64],
        num_workers: usize,
        counts: &[usize],
    ) -> Vec<f64> {
        let k = self.config.num_labels;

        // Cost of a soft label q: Σ_t q[t] · cost[t][argmin-cost decision].
        let soft_cost = |q: &[f64]| -> f64 {
            let d = self.min_cost_decision(q);
            q.iter()
                .enumerate()
                .map(|(t, p)| p * self.config.cost.get(t, d))
                .sum()
        };
        let spam_baseline = soft_cost(priors).max(1e-12);

        let mut scores = vec![1.0f64; num_workers];
        let mut q = vec![0.0f64; k]; // soft-label scratch, reused
                                     // P(worker emits l) = Σ_t prior[t] π_w[t][l]; soft label for l:
                                     // q[t] ∝ prior[t] π_w[t][l].
        for w in 0..num_workers {
            if counts[w] == 0 {
                continue;
            }
            let base = w * k * k;
            let mut expected = 0.0;
            for l in 0..k {
                for (t, qt) in q.iter_mut().enumerate() {
                    *qt = priors[t] * confusion[base + t * k + l];
                }
                let mass: f64 = q.iter().sum();
                if mass <= 0.0 {
                    continue;
                }
                normalize_in_place(&mut q);
                expected += mass * soft_cost(&q);
            }
            scores[w] = expected / spam_baseline;
        }
        // Workers with no answers keep score 1 (unknown = spam-neutral)
        // but are excluded by `spammers()` via the count check.
        scores
    }
}

#[inline]
fn normalize_in_place(p: &mut [f64]) {
    let s: f64 = p.iter().sum();
    if s > 0.0 {
        for v in p.iter_mut() {
            *v /= s;
        }
    } else {
        let u = 1.0 / p.len() as f64;
        for v in p.iter_mut() {
            *v = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build observations where `workers` is a list of closures mapping
    /// (item, truth) -> label.
    fn observe(
        truths: &[usize],
        workers: &[&dyn Fn(usize, usize) -> usize],
    ) -> Vec<LabelObservation> {
        let mut obs = Vec::new();
        for (item, &t) in truths.iter().enumerate() {
            for (w, f) in workers.iter().enumerate() {
                obs.push(LabelObservation {
                    worker: w,
                    item,
                    label: f(item, t),
                });
            }
        }
        obs
    }

    fn truths_pattern(n: usize) -> Vec<usize> {
        (0..n).map(|i| usize::from(i % 3 == 0)).collect()
    }

    #[test]
    fn perfect_workers_recover_truth() {
        let truths = truths_pattern(30);
        let honest = |_: usize, t: usize| t;
        let obs = observe(&truths, &[&honest, &honest, &honest]);
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        let out = qa.run(&obs);
        assert_eq!(out.decisions, truths);
        for w in 0..3 {
            assert!(
                out.spammer_score[w] < 0.1,
                "honest worker scored {}",
                out.spammer_score[w]
            );
        }
    }

    #[test]
    fn systematically_inverted_worker_is_corrected() {
        // 2 honest + 1 inverter. MV on any single item: 2 yes / 1 no
        // still works; the interesting property is that the inverter's
        // confusion matrix learns the inversion, so its *information*
        // is preserved (low spam score), unlike a random spammer.
        let truths = truths_pattern(40);
        let honest = |_: usize, t: usize| t;
        let invert = |_: usize, t: usize| 1 - t;
        let obs = observe(&truths, &[&honest, &honest, &invert]);
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        let out = qa.run(&obs);
        assert_eq!(out.decisions, truths);
        // The inverter should not look like a spammer: its answers are
        // perfectly informative once decoded.
        assert!(
            out.spammer_score[2] < 0.5,
            "inverter scored {} (should be informative)",
            out.spammer_score[2]
        );
        // Confusion matrix rows should be near-deterministic inversions.
        assert!(out.confusion[2][0][1] > 0.9);
        assert!(out.confusion[2][1][0] > 0.9);
    }

    #[test]
    fn always_yes_spammer_identified() {
        let truths = truths_pattern(40);
        let honest = |_: usize, t: usize| t;
        let always_yes = |_: usize, _: usize| 1usize;
        let obs = observe(&truths, &[&honest, &honest, &honest, &always_yes]);
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        let out = qa.run(&obs);
        assert_eq!(out.decisions, truths, "honest majority should prevail");
        assert!(
            out.spammer_score[3] > 0.9,
            "always-yes worker scored {} (should be ~1)",
            out.spammer_score[3]
        );
        assert_eq!(out.spammers(0.9), vec![3]);
    }

    #[test]
    fn random_spammer_identified_and_outvoted() {
        let truths = truths_pattern(60);
        let honest = |_: usize, t: usize| t;
        // Deterministic pseudo-random labels decoupled from the truth.
        let random = |item: usize, _: usize| (item * 2654435761) >> 3 & 1;
        let obs = observe(&truths, &[&honest, &honest, &honest, &random]);
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        let out = qa.run(&obs);
        assert_eq!(out.decisions, truths);
        assert!(
            out.spammer_score[3] > 0.6,
            "random worker scored {}",
            out.spammer_score[3]
        );
        assert!(out.spammer_score[0] < 0.2);
    }

    #[test]
    fn qa_beats_majority_vote_with_spammer_flood() {
        // 2 honest workers + 3 always-yes spammers: plain majority vote
        // answers "yes" on everything; QA should learn the spammers'
        // uninformative matrices and side with the honest pair.
        let truths = truths_pattern(60);
        let honest = |_: usize, t: usize| t;
        let always_yes = |_: usize, _: usize| 1usize;
        let obs = observe(
            &truths,
            &[&honest, &honest, &always_yes, &always_yes, &always_yes],
        );
        // Majority vote is wrong on all true-negative items:
        let mv_errors = truths.iter().filter(|&&t| t == 0).count();
        assert!(mv_errors > 0);
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        let out = qa.run(&obs);
        let qa_errors = out
            .decisions
            .iter()
            .zip(&truths)
            .filter(|(d, t)| d != t)
            .count();
        assert!(
            qa_errors < mv_errors,
            "QA errors {qa_errors} should beat MV errors {mv_errors}"
        );
    }

    #[test]
    fn asymmetric_cost_shifts_decision_threshold() {
        // A single item with a 60/40 split toward "no": with 0/1 loss
        // the decision is "no"; with FN twice as costly the expected
        // cost of "no" is 0.4·2 = 0.8 vs "yes" 0.6·1 = 0.6 -> "yes".
        let obs: Vec<LabelObservation> = (0..5)
            .map(|w| LabelObservation {
                worker: w,
                item: 0,
                label: usize::from(w < 2),
            })
            .collect();
        let zero_one = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        // Use 0 iterations so posteriors stay at the raw vote split and
        // the test isolates the decision rule.
        let mut cfg = QualityAdjustConfig::paper_join();
        cfg.iterations = 0;
        let mut cfg01 = QualityAdjustConfig::categorical(2);
        cfg01.iterations = 0;
        let out01 = QualityAdjust::new(cfg01).run(&obs);
        assert_eq!(out01.decisions[0], 0);
        let out_fn2 = QualityAdjust::new(cfg).run(&obs);
        assert_eq!(out_fn2.decisions[0], 1);
        let _ = zero_one;
    }

    #[test]
    fn multiclass_labels_supported() {
        // 4 categories (e.g. hair colors), 3 honest workers + 1 spammer.
        let truths: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let honest = |_: usize, t: usize| t;
        let always_two = |_: usize, _: usize| 2usize;
        let obs = observe(&truths, &[&honest, &honest, &honest, &always_two]);
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(4));
        let out = qa.run(&obs);
        assert_eq!(out.decisions, truths);
        assert!(out.spammer_score[3] > 0.5);
    }

    #[test]
    fn empty_observations() {
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        let out = qa.run(&[]);
        assert!(out.decisions.is_empty());
        assert!(out.posteriors.is_empty());
    }

    #[test]
    fn item_with_no_votes_gets_prior_decision() {
        // Item 1 never observed; item 0 and 2 observed.
        let obs = vec![
            LabelObservation {
                worker: 0,
                item: 0,
                label: 1,
            },
            LabelObservation {
                worker: 1,
                item: 0,
                label: 1,
            },
            LabelObservation {
                worker: 0,
                item: 2,
                label: 1,
            },
            LabelObservation {
                worker: 1,
                item: 2,
                label: 1,
            },
        ];
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        let out = qa.run(&obs);
        assert_eq!(out.decisions.len(), 3);
        // Prior is dominated by label 1, so the unseen item defaults to 1.
        assert_eq!(out.decisions[1], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        qa.run(&[LabelObservation {
            worker: 0,
            item: 0,
            label: 5,
        }]);
    }

    #[test]
    fn posteriors_are_distributions() {
        let truths = truths_pattern(20);
        let honest = |_: usize, t: usize| t;
        let noisy = |item: usize, t: usize| if item.is_multiple_of(7) { 1 - t } else { t };
        let obs = observe(&truths, &[&honest, &noisy, &honest]);
        let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
        let out = qa.run(&obs);
        for p in &out.posteriors {
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let s: f64 = out.priors.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// EM always yields valid distributions and in-range decisions.
        #[test]
        fn em_outputs_valid(
            labels in prop::collection::vec((0usize..8, 0usize..12, 0usize..3), 1..200)
        ) {
            let obs: Vec<LabelObservation> = labels
                .into_iter()
                .map(|(worker, item, label)| LabelObservation { worker, item, label })
                .collect();
            let qa = QualityAdjust::new(QualityAdjustConfig::categorical(3));
            let out = qa.run(&obs);
            for p in &out.posteriors {
                let s: f64 = p.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-6);
            }
            for &d in &out.decisions {
                prop_assert!(d < 3);
            }
            for w in &out.confusion {
                for row in w {
                    let s: f64 = row.iter().sum();
                    prop_assert!((s - 1.0).abs() < 1e-6);
                }
            }
            for &s in &out.spammer_score {
                prop_assert!(s.is_finite() && s >= 0.0);
            }
        }

        /// With unanimous honest votes, decisions match the votes
        /// regardless of iteration count.
        #[test]
        fn unanimous_votes_respected(
            truths in prop::collection::vec(0usize..2, 1..30),
            iters in 0usize..8,
        ) {
            let mut obs = Vec::new();
            for (item, &t) in truths.iter().enumerate() {
                for w in 0..3 {
                    obs.push(LabelObservation { worker: w, item, label: t });
                }
            }
            let mut cfg = QualityAdjustConfig::categorical(2);
            cfg.iterations = iters;
            let out = QualityAdjust::new(cfg).run(&obs);
            prop_assert_eq!(out.decisions, truths);
        }
    }
}
