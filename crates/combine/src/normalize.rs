//! Response normalizers for generative tasks.
//!
//! §2.2: "We also introduce a `Normalizer`, which takes the text input
//! from workers and normalizes it by lower-casing and single-spacing it,
//! which makes the combiner more effective at aggregating responses."

/// A text normalizer applied to worker responses before combination.
pub trait Normalizer: Send + Sync {
    /// Normalize one raw worker response.
    fn normalize(&self, raw: &str) -> String;

    /// Name used when compiling the task definition back to DSL text.
    fn name(&self) -> &'static str;
}

/// The paper's `LowercaseSingleSpace`: trim, lowercase, collapse any
/// whitespace run to a single ASCII space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowercaseSingleSpace;

impl Normalizer for LowercaseSingleSpace {
    fn normalize(&self, raw: &str) -> String {
        normalize_lowercase_single_space(raw)
    }

    fn name(&self) -> &'static str {
        "LowercaseSingleSpace"
    }
}

/// Identity normalizer for constrained-input responses (e.g. radio
/// buttons) that need no cleanup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl Normalizer for Identity {
    fn normalize(&self, raw: &str) -> String {
        raw.to_owned()
    }

    fn name(&self) -> &'static str {
        "Identity"
    }
}

/// Free-function form of [`LowercaseSingleSpace`].
pub fn normalize_lowercase_single_space(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut pending_space = false;
    for ch in raw.trim().chars() {
        if ch.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.extend(ch.to_lowercase());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_single_spaces() {
        assert_eq!(
            normalize_lowercase_single_space("  Humpback   WHALE \t"),
            "humpback whale"
        );
    }

    #[test]
    fn collapses_newlines_and_tabs() {
        assert_eq!(
            normalize_lowercase_single_space("Great\nWhite\t\tShark"),
            "great white shark"
        );
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert_eq!(normalize_lowercase_single_space(""), "");
        assert_eq!(normalize_lowercase_single_space("   \n\t "), "");
    }

    #[test]
    fn already_normal_is_unchanged() {
        assert_eq!(normalize_lowercase_single_space("ant"), "ant");
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(
            normalize_lowercase_single_space("ÉLÉPHANT  DE MER"),
            "éléphant de mer"
        );
    }

    #[test]
    fn trait_objects_work() {
        let n: &dyn Normalizer = &LowercaseSingleSpace;
        assert_eq!(n.normalize("A  B"), "a b");
        assert_eq!(n.name(), "LowercaseSingleSpace");
        let id: &dyn Normalizer = &Identity;
        assert_eq!(id.normalize("A  B"), "A  B");
    }

    #[test]
    fn normalization_makes_votes_agree() {
        // The motivating §2.2 scenario: raw answers disagree, normalized
        // answers form a clean majority.
        let raw = ["Humpback Whale", "humpback   whale", " HUMPBACK WHALE"];
        let normalized: Vec<String> = raw
            .iter()
            .map(|r| normalize_lowercase_single_space(r))
            .collect();
        let outcome = crate::vote::majority_vote(&normalized);
        assert_eq!(outcome.winner.as_deref(), Some("humpback whale"));
        assert_eq!(outcome.winner_votes, 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Normalization is idempotent.
        #[test]
        fn idempotent(s in ".{0,64}") {
            let once = normalize_lowercase_single_space(&s);
            let twice = normalize_lowercase_single_space(&once);
            prop_assert_eq!(once, twice);
        }

        /// Output never contains uppercase ASCII or doubled spaces.
        #[test]
        fn output_canonical(s in ".{0,64}") {
            let out = normalize_lowercase_single_space(&s);
            prop_assert!(!out.contains("  "));
            prop_assert!(!out.chars().any(|c| c.is_ascii_uppercase()));
            prop_assert!(!out.starts_with(' ') && !out.ends_with(' '));
        }
    }
}
