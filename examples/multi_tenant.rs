//! Two tenants, one marketplace: the multi-tenant query service.
//!
//! Alice and Bob each submit queries against the same `people` table.
//! Their queries run **concurrently** on one shared marketplace clock,
//! and because Bob's filter asks exactly the questions Alice's does,
//! the shared Task Cache posts (and pays for) each HIT once — Bob
//! rides along for free, which his report's `service:` block shows.
//!
//! Run with: `cargo run --example multi_tenant`

use qurk::service::QueryService;
use qurk::{Catalog, Relation, Schema, Value, ValueType};
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Hidden ground truth: ten people, the tallest five are "tall",
    //    with a latent height dimension for sorting.
    let mut truth = GroundTruth::new();
    truth.define_dimension("height", DimensionParams::crisp(0.02));
    let items = truth.new_items(10);
    for (i, &item) in items.iter().enumerate() {
        truth.set_predicate(
            item,
            "isTall",
            PredicateTruth {
                value: i >= 5,
                error_rate: 0.03,
            },
        );
        truth.set_score(item, "height", i as f64);
        truth.set_entity(item, EntityId(i as u64));
    }
    let market = Marketplace::new(&CrowdConfig::default().with_seed(7), truth);

    // 2. One catalog both tenants query.
    let mut catalog = Catalog::new();
    let mut people = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &item) in items.iter().enumerate() {
        people.push(vec![Value::Int(i as i64), Value::Item(item)])?;
    }
    catalog.register_table("people", people);
    catalog.define_tasks(
        r#"TASK isTall(field) TYPE Filter:
            Prompt: "<img src='%s'> Is this person tall?", tuple[field]
           TASK byHeight(field) TYPE Rank:
            OrderDimensionName: "height"
            Html: "<img src='%s'>", tuple[field]
        "#,
    )?;

    // 3. The service: one shared marketplace, two tenants. Alice gets
    //    a $5 budget; Bob is uncapped.
    let mut svc = QueryService::new(&catalog, market);
    svc.register_tenant("alice", Some(5.0));
    svc.register_tenant("bob", None);

    // 4. Same filter from both tenants, plus a sort only Alice wants.
    //    All three queries run concurrently in one batch.
    svc.submit("alice", "SELECT p.id FROM people AS p WHERE isTall(p.img)")?;
    svc.submit("bob", "SELECT p.id FROM people AS p WHERE isTall(p.img)")?;
    svc.submit(
        "alice",
        "SELECT p.id FROM people AS p ORDER BY byHeight(p.img)",
    )?;

    for report in svc.run_pending() {
        let report = report?;
        let stats = report
            .service
            .as_ref()
            .expect("service queries carry ServiceStats");
        println!(
            "{:<6} {} rows  spent ${:.3}  saved ${:.3}  {} rounds ({} shared)",
            stats.tenant,
            report.relation.len(),
            report.cost_dollars,
            stats.saved_dollars,
            stats.rounds,
            stats.rounds_shared,
        );
    }

    // 5. The books balance: per-tenant meters sum to the market total,
    //    and Bob's identical specs were never re-posted.
    let (cache_hits, _cache_misses) = svc.market().cache_stats();
    println!(
        "\nmarket: {} HITs posted, {} specs served from cache, total ${:.3}",
        svc.market().total_hits_posted(),
        cache_hits,
        svc.market().total_spend(),
    );
    println!(
        "tenants: alice ${:.3} + bob ${:.3} == market ${:.3}",
        svc.tenant_spent("alice")?,
        svc.tenant_spent("bob")?,
        svc.market().total_spend(),
    );
    assert!(
        (svc.tenant_spent("alice")? + svc.tenant_spent("bob")? - svc.market().total_spend()).abs()
            < 1e-9
    );
    Ok(())
}
