//! The §6 "future work" extensions, working together:
//!
//! 1. **Adaptive vote collection** — stop asking once an answer has a
//!    decisive margin, instead of a fixed 5 votes.
//! 2. **Spam identification & banning** — run QualityAdjust over join
//!    votes, flag spam-scoring workers, ban them, and measure the
//!    second run.
//! 3. **Adaptive batch sizing** — binary-search the largest comparison
//!    group workers will actually accept for $0.01.
//!
//! Run with: `cargo run --release --example adaptive_crowd`

use qurk::adaptive::{AdaptiveVotes, BatchSizeSearch};
use qurk::ops::join::{identify_spammers, JoinOp};
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace, WorkerArchetype};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Adaptive votes on a 40-item filter. ---
    let mut gt = GroundTruth::new();
    let items = gt.new_items(40);
    for (i, &it) in items.iter().enumerate() {
        gt.set_predicate(
            it,
            "clear",
            PredicateTruth {
                value: i % 2 == 0,
                error_rate: 0.05,
            },
        );
    }
    let mut market = Marketplace::new(&CrowdConfig::default(), gt);
    let out = AdaptiveVotes::default().run_filter(&mut market, "clear", &items)?;
    let correct = out
        .decisions
        .iter()
        .enumerate()
        .filter(|(i, &d)| d == (i % 2 == 0))
        .count();
    let votes: u32 = out.votes_used.iter().sum();
    println!(
        "adaptive votes : {correct}/40 correct using {votes} votes \
         (fixed-5 would use 200)"
    );

    // --- 2. Spam banning on a join. ---
    let mut gt = GroundTruth::new();
    let left = gt.new_items(20);
    let right = gt.new_items(20);
    for i in 0..20 {
        gt.set_entity(left[i], EntityId(i as u64));
        gt.set_entity(right[i], EntityId(i as u64));
    }
    // 10 assignments per HIT gives the EM enough evidence per worker.
    let mut cfg = CrowdConfig::default().with_seed(7).with_assignments(10);
    cfg.workers.spammer_fraction = 0.25;
    let mut market = Marketplace::new(&cfg, gt);
    let op = JoinOp::default();
    let run1 = op.run(&mut market, &left, &right, None)?;
    let spammers = identify_spammers(&run1.pair_votes, 1.0);
    let real: usize = spammers
        .iter()
        .filter(|w| {
            matches!(
                market.pool().get(**w).archetype,
                WorkerArchetype::Spammer(_)
            )
        })
        .count();
    println!(
        "spam banning   : flagged {} workers ({real} actual spammers); banning them",
        spammers.len()
    );
    market.ban_workers(spammers);
    let run2 = op.run(&mut market, &left, &right, None)?;
    let tp = |m: &[(usize, usize)]| m.iter().filter(|&&(i, j)| i == j).count();
    println!(
        "               : matches before {}  after {} (true: 20)",
        tp(&run1.matches),
        tp(&run2.matches)
    );

    // --- 3. Batch-size search for comparison groups. ---
    let mut gt = GroundTruth::new();
    let sq = gt.new_items(30);
    gt.define_dimension("size", DimensionParams::crisp(0.02));
    for (i, &it) in sq.iter().enumerate() {
        gt.set_score(it, "size", i as f64);
    }
    let mut market = Marketplace::new(&CrowdConfig::default(), gt);
    let search = BatchSizeSearch {
        min_size: 2,
        max_size: 24,
        ..Default::default()
    };
    let best = search.search(|b| {
        BatchSizeSearch::probe_compare_batch(&mut market, &sq, "size", b, 2.0 * 3600.0)
    });
    println!(
        "batch search   : largest comparison group accepted within 2h: {best} items \
         (the paper found ~10 for $0.01)"
    );
    Ok(())
}
