//! The celebrity join (§2.4, §3): naive vs. optimized.
//!
//! Joins `celeb(name, img)` against `photos(id, img)` with the
//! `samePerson` EquiJoin task, first unbatched and unfiltered (the $67
//! configuration), then with NaiveBatch(5) plus POSSIBLY feature
//! filtering on gender/hair/skin (the ~$3 configuration), and reports
//! accuracy against the hidden ground truth.
//!
//! Run with: `cargo run --release --example celebrity_join`

use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::prelude::*;
use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};
use qurk_data::celebrity::{celebrity_dataset, CelebrityConfig};

const TASKS: &str = r#"
TASK samePerson(f1, f2) TYPE EquiJoin:
    SingularName: "celebrity"
    PluralName: "celebrities"
    LeftPreview: "<img src='%s' class=smImg>", tuple1[f1]
    LeftNormal: "<img src='%s' class=lgImg>", tuple1[f1]
    RightPreview: "<img src='%s' class=smImg>", tuple2[f2]
    RightNormal: "<img src='%s' class=lgImg>", tuple2[f2]
    Combiner: QualityAdjust
TASK gender(field) TYPE Generative:
    Prompt: "<img src='%s'> What is this person's gender?", tuple[field]
    Response: Radio("Gender", ["Male", "Female", UNKNOWN])
    Combiner: MajorityVote
TASK hairColor(field) TYPE Generative:
    Prompt: "<img src='%s'> What is this person's hair color?", tuple[field]
    Response: Radio("Hair color", ["black", "brown", "blond", "white", UNKNOWN])
    Combiner: MajorityVote
TASK skinColor(field) TYPE Generative:
    Prompt: "<img src='%s'> What is this person's skin color?", tuple[field]
    Response: Radio("Skin color", ["light", "medium", "dark", UNKNOWN])
    Combiner: MajorityVote
"#;

fn build_world(seed: u64) -> (Catalog, Marketplace, Vec<(String, u64)>) {
    let mut truth = GroundTruth::new();
    let ds = celebrity_dataset(
        &mut truth,
        &CelebrityConfig::default()
            .with_celebrities(20)
            .with_seed(seed),
    );
    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed), truth);

    let mut celeb = Relation::new(Schema::new(&[
        ("name", ValueType::Text),
        ("img", ValueType::Item),
    ]));
    let mut photos = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    let mut expected = Vec::new();
    for (i, c) in ds.celebrities.iter().enumerate() {
        celeb
            .push(vec![
                Value::text(c.name.clone()),
                Value::Item(ds.celeb_items[i]),
            ])
            .unwrap();
        expected.push((c.name.clone(), c.entity.0));
    }
    for (j, &item) in ds.photo_items.iter().enumerate() {
        photos
            .push(vec![Value::Int(j as i64), Value::Item(item)])
            .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register_table("celeb", celeb);
    catalog.register_table("photos", photos);
    catalog.define_tasks(TASKS).unwrap();
    (catalog, market, expected)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Naive: SimpleJoin over the full cross product. ---
    let (catalog, market, _) = build_world(11);
    let mut session = Session::builder().catalog(&catalog).backend(market).build();
    let naive = session
        .query("SELECT c.name, p.id FROM celeb c JOIN photos p ON samePerson(c.img, p.img)")
        .join(JoinOp {
            strategy: JoinStrategy::Simple,
            ..Default::default()
        })
        .report()?;
    println!(
        "naive join:     {:>4} HITs  ${:>6.2}  {} matches",
        naive.hits_posted,
        naive.cost_dollars,
        naive.relation.len()
    );

    // --- Optimized: NaiveBatch(5) + POSSIBLY feature filtering. ---
    // A fresh world (same seed) so both plans face the same crowd; the
    // join strategy is a per-query override on the new session.
    let (catalog, market, _) = build_world(11);
    let mut session = Session::builder().catalog(&catalog).backend(market).build();
    let optimized = session
        .query(
            "SELECT c.name, p.id FROM celeb c JOIN photos p ON samePerson(c.img, p.img) \
             AND POSSIBLY gender(c.img) = gender(p.img) \
             AND POSSIBLY hairColor(c.img) = hairColor(p.img) \
             AND POSSIBLY skinColor(c.img) = skinColor(p.img)",
        )
        .join(JoinOp {
            strategy: JoinStrategy::NaiveBatch(5),
            ..Default::default()
        })
        .report()?;
    println!(
        "optimized join: {:>4} HITs  ${:>6.2}  {} matches",
        optimized.hits_posted,
        optimized.cost_dollars,
        optimized.relation.len()
    );
    println!(
        "\ncost reduction: {:.1}x",
        naive.cost_dollars / optimized.cost_dollars.max(0.01)
    );
    println!("\noptimized plan:\n{}", optimized.explain);
    Ok(())
}
