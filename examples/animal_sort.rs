//! Sorting animals by adult size (§4): Compare vs. Rate vs. Hybrid.
//!
//! Reproduces the paper's Q2 workload on the 27-item animals dataset
//! (25 animals + a rock + a dandelion) and reports, per operator, the
//! HIT cost and the rank correlation (Kendall τ-b) against the paper's
//! published Compare ordering.
//!
//! Run with: `cargo run --release --example animal_sort`

use qurk::ops::sort::{CompareSort, HybridSort, HybridStrategy, RateSort};
use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};
use qurk_data::animals::{animals_dataset, SIZE};
use qurk_metrics::tau_between_orders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut truth = GroundTruth::new();
    let ds = animals_dataset(&mut truth);
    let ground_truth_order = truth.true_order(&ds.items, SIZE);
    let mut market = Marketplace::new(&CrowdConfig::default(), truth);

    println!(
        "{:<22} {:>6} {:>8} {:>8}",
        "operator", "HITs", "cost $", "tau"
    );

    // Comparison sort: groups of 5, every pair voted >= 5 times.
    let spent0 = market.ledger.total();
    let cmp = CompareSort::default().run(&mut market, &ds.items, SIZE)?;
    let tau = tau_between_orders(&cmp.order, &ground_truth_order)?;
    println!(
        "{:<22} {:>6} {:>8.2} {:>8.3}",
        "Compare (S=5)",
        cmp.hits_posted,
        market.ledger.total() - spent0,
        tau
    );

    // Rating sort: 7-point Likert, batch 5.
    let spent0 = market.ledger.total();
    let rate = RateSort::default().run(&mut market, &ds.items, SIZE)?;
    let tau = tau_between_orders(&rate.order, &ground_truth_order)?;
    println!(
        "{:<22} {:>6} {:>8.2} {:>8.3}",
        "Rate (batch=5)",
        rate.hits_posted,
        market.ledger.total() - spent0,
        tau
    );

    // Hybrid: rate first, then 20 windowed comparison HITs (§4.2.4:
    // tau improved from ~.76 to ~.90 within 20 iterations).
    let spent0 = market.ledger.total();
    let hybrid = HybridSort {
        strategy: HybridStrategy::Window { t: 6 },
        ..Default::default()
    }
    .run(&mut market, &ds.items, SIZE, 20)?;
    let tau0 = tau_between_orders(&hybrid.initial.order, &ground_truth_order)?;
    let tau = tau_between_orders(hybrid.trajectory.last().unwrap(), &ground_truth_order)?;
    println!(
        "{:<22} {:>6} {:>8.2} {:>8.3}  (started at {:.3})",
        "Hybrid (Window t=6)",
        hybrid.hits_posted,
        market.ledger.total() - spent0,
        tau,
        tau0
    );

    println!("\nhybrid final order (largest first):");
    let names: Vec<&str> = hybrid
        .trajectory
        .last()
        .unwrap()
        .iter()
        .filter_map(|&it| ds.name_of(it))
        .collect();
    println!("  {}", names.join(" > "));
    Ok(())
}
