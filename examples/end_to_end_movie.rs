//! The end-to-end movie query (§5) through the SQL interface.
//!
//! ```sql
//! SELECT a.name, s.id
//! FROM actors a JOIN scenes s ON inScene(a.img, s.img)
//!   AND POSSIBLY numInScene(s.img) = "1"
//! ORDER BY a.name, quality(s.img)
//! ```
//!
//! 211 movie stills, 5 actor headshots; the `numInScene` feature
//! prefilters scenes (55% selectivity), `inScene` joins actors to the
//! scenes they star in, and each actor's scenes are ordered by how
//! flattering they are (Rate: the dimension is so subjective that
//! rating matches comparing, §5.2).
//!
//! Run with: `cargo run --release --example end_to_end_movie`

use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::ops::sort::RateSort;
use qurk::prelude::*;
use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};
use qurk_data::movie::{movie_dataset, MovieConfig};

const TASKS: &str = r#"
TASK inScene(f1, f2) TYPE EquiJoin:
    SingularName: "actor"
    PluralName: "actors"
    LeftNormal: "<img src='%s' class=lgImg>", tuple1[f1]
    RightNormal: "<img src='%s' class=lgImg>", tuple2[f2]
    Combiner: QualityAdjust
TASK numInScene(field) TYPE Generative:
    Prompt: "<img src='%s'> How many people are in this scene?", tuple[field]
    Response: Radio("Number of people", ["0", "1", "2", "3+", UNKNOWN])
    Combiner: MajorityVote
TASK quality(field) TYPE Rank:
    SingularName: "scene"
    PluralName: "scenes"
    OrderDimensionName: "quality"
    LeastName: "least flattering"
    MostName: "most flattering"
    Html: "<img src='%s' class=lgImg>", tuple[field]
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut truth = GroundTruth::new();
    let ds = movie_dataset(&mut truth, &MovieConfig::default());
    let market = Marketplace::new(&CrowdConfig::default(), truth);

    let mut actors = Relation::new(Schema::new(&[
        ("name", ValueType::Text),
        ("img", ValueType::Item),
    ]));
    for (name, &item) in ds.actor_names.iter().zip(&ds.actor_items) {
        actors.push(vec![Value::text(name.clone()), Value::Item(item)])?;
    }
    let mut scenes = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for s in &ds.scenes {
        scenes.push(vec![Value::Int(s.second as i64), Value::Item(s.item)])?;
    }

    let mut catalog = Catalog::new();
    catalog.register_table("actors", actors);
    catalog.register_table("scenes", scenes);
    catalog.define_tasks(TASKS)?;

    // The paper's winning configuration: SmartBatch 5x5 join + Rate
    // batch 5 sort (Table 5's 77-HIT plan), set per query on the
    // session.
    let mut session = Session::builder().catalog(&catalog).backend(market).build();
    let report = session
        .query(
            "SELECT a.name, s.id FROM actors a JOIN scenes s ON inScene(a.img, s.img) \
             AND POSSIBLY numInScene(s.img) = \"1\" \
             ORDER BY a.name, quality(s.img) DESC",
        )
        .join(JoinOp {
            strategy: JoinStrategy::SmartBatch { rows: 5, cols: 5 },
            ..Default::default()
        })
        .sort(SortMode::Rate(RateSort::default()))
        .report()?;

    println!("plan:\n{}", report.explain);
    println!(
        "total: {} HITs, ${:.2}, {} (actor, scene) rows",
        report.hits_posted,
        report.cost_dollars,
        report.relation.len()
    );

    // Show each actor's top three most flattering scenes.
    let mut current = String::new();
    let mut shown = 0;
    for row in report.relation.rows() {
        let name = row[0].as_text().unwrap_or("?");
        if name != current {
            current = name.to_owned();
            shown = 0;
            println!("\n{name}:");
        }
        if shown < 3 {
            println!("  scene at {:>3}s", row[1].as_int().unwrap_or(-1));
            shown += 1;
        }
    }
    Ok(())
}
