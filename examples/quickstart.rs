//! Quickstart: the paper's first example (§2.1) end to end.
//!
//! Builds the `celeb(name, img)` table, registers the `isFemale`
//! Filter task, and runs
//!
//! ```sql
//! SELECT c.name FROM celeb AS c WHERE isFemale(c.img)
//! ```
//!
//! against the simulated crowd, printing the survivors, the plan, and
//! what the query cost.
//!
//! Run with: `cargo run --example quickstart`

use qurk::prelude::*;
use qurk_crowd::truth::PredicateTruth;
use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Hidden ground truth: eight celebrities, half of them women.
    //    Workers perceive this through ~3% answer noise.
    let mut truth = GroundTruth::new();
    let names = [
        "Meryl Streep",
        "Colin Firth",
        "Natalie Portman",
        "Jeff Bridges",
        "Annette Bening",
        "Jesse Eisenberg",
        "Nicole Kidman",
        "James Franco",
    ];
    let items = truth.new_items(names.len());
    for (i, &item) in items.iter().enumerate() {
        truth.set_predicate(
            item,
            "isFemale",
            PredicateTruth {
                value: i % 2 == 0,
                error_rate: 0.03,
            },
        );
    }

    // 2. A simulated marketplace: 150 workers, $0.01/HIT + $0.005 fee,
    //    5 assignments per HIT (the paper's defaults).
    let market = Marketplace::new(&CrowdConfig::default(), truth);

    // 3. The relational side: a table whose `img` column references the
    //    crowd-visible items.
    let mut celeb = Relation::new(Schema::new(&[
        ("name", ValueType::Text),
        ("img", ValueType::Item),
    ]));
    for (i, &item) in items.iter().enumerate() {
        celeb.push(vec![Value::text(names[i]), Value::Item(item)])?;
    }

    let mut catalog = Catalog::new();
    catalog.register_table("celeb", celeb);
    catalog.define_tasks(
        r#"TASK isFemale(field) TYPE Filter:
            Prompt: "<table><tr><td><img src='%s'></td>
                     <td>Is the person in the image a woman?</td></tr></table>", tuple[field]
            YesText: "Yes"
            NoText: "No"
            Combiner: MajorityVote
        "#,
    )?;

    // 4. Open a session (catalog + backend) and run the query with a
    //    dollar budget. The session meters every query and caches
    //    identical HITs across queries.
    let mut session = Session::builder().catalog(&catalog).backend(market).build();

    // Pre-flight: analyze without posting any crowd work. A clean
    // query returns no diagnostics; a budget below the cost-model
    // floor (say) would come back as a QA005 error here instead of
    // failing with BudgetExceeded mid-flight.
    let diagnostics = session
        .query("SELECT c.name FROM celeb AS c WHERE isFemale(c.img)")
        .budget_dollars(1.0)
        .check()?;
    println!("pre-flight: {} diagnostic(s)", diagnostics.len());
    for d in &diagnostics {
        println!("  {d}");
    }

    let report = session
        .query("SELECT c.name FROM celeb AS c WHERE isFemale(c.img)")
        .budget_dollars(1.0)
        .report()?;

    println!("plan:\n{}", report.explain);
    println!("result ({} rows):", report.relation.len());
    for row in report.relation.rows() {
        println!("  {}", row[0]);
    }
    println!(
        "\ncrowd stats: {} HITs posted, {} assignments, ${:.3} spent, {:.2} virtual hours",
        report.hits_posted,
        report.assignments,
        report.cost_dollars,
        report.elapsed_secs / 3600.0
    );

    // Re-running the same query is answered from the session cache.
    let again = session
        .query("SELECT c.name FROM celeb AS c WHERE isFemale(c.img)")
        .report()?;
    println!("re-run: {} HITs posted (cached)", again.hits_posted);
    Ok(())
}
