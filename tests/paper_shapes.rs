//! Integration tests asserting the paper's *qualitative* findings hold
//! end-to-end — the claims a reviewer would check before trusting the
//! reproduction. These run the same code paths as the `repro` harness
//! but with small inputs and generous bounds so they are stable in CI.

use qurk::ops::join::feature_filter::{FeatureFilter, FeatureFilterConfig, FeatureSpec};
use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::ops::sort::{CompareSort, HybridSort, HybridStrategy, RateSort};
use qurk::task::CombinerKind;
use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};
use qurk_data::celebrity::{celebrity_dataset, CelebrityConfig, GENDER, HAIR, SKIN};
use qurk_data::squares::{squares_dataset, AREA};
use qurk_metrics::tau_between_orders;

fn celebrity_market(n: usize, seed: u64) -> (Marketplace, qurk_data::celebrity::CelebrityDataset) {
    let mut gt = GroundTruth::new();
    let ds = celebrity_dataset(&mut gt, &CelebrityConfig::default().with_celebrities(n));
    (
        Marketplace::new(&CrowdConfig::default().with_seed(seed), gt),
        ds,
    )
}

/// §3.4: "batching is an effective technique … offering an
/// order-of-magnitude reduction in overall cost" with a "small effect
/// on result quality".
#[test]
fn batching_cuts_cost_an_order_of_magnitude_with_small_quality_cost() {
    let (mut m1, ds) = celebrity_market(15, 21);
    let simple = JoinOp {
        strategy: JoinStrategy::Simple,
        combiner: CombinerKind::QualityAdjust,
        ..Default::default()
    }
    .run(&mut m1, &ds.celeb_items, &ds.photo_items, None)
    .unwrap();
    let (mut m2, ds2) = celebrity_market(15, 22);
    let batched = JoinOp {
        strategy: JoinStrategy::NaiveBatch(10),
        combiner: CombinerKind::QualityAdjust,
        ..Default::default()
    }
    .run(&mut m2, &ds2.celeb_items, &ds2.photo_items, None)
    .unwrap();
    assert_eq!(simple.hits_posted, 225);
    assert_eq!(batched.hits_posted, simple.hits_posted.div_ceil(10));

    let tp = |matches: &[(usize, usize)], ds: &qurk_data::celebrity::CelebrityDataset| {
        matches
            .iter()
            .filter(|&&(i, j)| ds.photo_owner[j] == i)
            .count()
    };
    let tp_simple = tp(&simple.matches, &ds);
    let tp_batched = tp(&batched.matches, &ds2);
    assert!(tp_simple >= 13, "simple tp={tp_simple}");
    assert!(
        tp_batched + 3 >= tp_simple,
        "batched tp={tp_batched} vs simple {tp_simple}"
    );
}

/// §3.4: "feature filtering offers significant cost savings when a
/// good set of features can be identified" — and the auto-selection
/// machinery (κ + selectivity tests) keeps the good ones.
#[test]
fn feature_filter_pipeline_prunes_without_losing_matches() {
    let (mut market, ds) = celebrity_market(16, 23);
    let ff = FeatureFilter::new(FeatureFilterConfig {
        sample_fraction: 0.5,
        ..Default::default()
    });
    let specs = vec![
        FeatureSpec {
            name: GENDER.into(),
            num_options: 2,
        },
        FeatureSpec {
            name: HAIR.into(),
            num_options: 4,
        },
        FeatureSpec {
            name: SKIN.into(),
            num_options: 3,
        },
    ];
    let out = ff
        .run(&mut market, &specs, &ds.celeb_items, &ds.photo_items)
        .unwrap();
    // Gender must survive selection (κ high, selectivity ~0.5).
    assert!(out.selected.contains(&0), "decisions={:?}", out.decisions);
    // The cross product shrank.
    assert!(
        out.candidates.len() < 16 * 16 / 2,
        "candidates={}",
        out.candidates.len()
    );
    // Few true matches were lost.
    let lost = (0..16)
        .filter(|&i| {
            let j = ds.photo_owner.iter().position(|&o| o == i).unwrap();
            !out.candidates.contains(&(i, j))
        })
        .count();
    assert!(lost <= 3, "lost={lost}");
}

/// §4.3: "ratings achieve sort orders close to but not as good as
/// comparisons" at a fraction of the cost.
#[test]
fn compare_beats_rate_in_accuracy_rate_wins_on_cost() {
    let mut gt = GroundTruth::new();
    let ds = squares_dataset(&mut gt, 30);
    let mut market = Marketplace::new(&CrowdConfig::default().with_seed(24), gt);
    let cmp = CompareSort::default()
        .run(&mut market, &ds.items, AREA)
        .unwrap();
    let rate = RateSort::default()
        .run(&mut market, &ds.items, AREA)
        .unwrap();
    let truth_order = ds.true_order_desc();
    let tau_cmp = tau_between_orders(&cmp.order, &truth_order).unwrap();
    let tau_rate = tau_between_orders(&rate.order, &truth_order).unwrap();
    assert!(tau_cmp > tau_rate, "cmp={tau_cmp} rate={tau_rate}");
    assert!(tau_cmp > 0.95, "cmp={tau_cmp}");
    assert!(tau_rate > 0.6, "rate={tau_rate}");
    assert!(rate.hits_posted * 5 < cmp.hits_posted);
}

/// §4.3: the hybrid "was able to get similar (τ > .95) accuracy to
/// sorts at less than one-third the cost".
#[test]
fn hybrid_reaches_high_tau_at_fraction_of_compare_cost() {
    let mut gt = GroundTruth::new();
    let ds = squares_dataset(&mut gt, 30);
    let mut market = Marketplace::new(&CrowdConfig::default().with_seed(25), gt);
    let truth_order = ds.true_order_desc();

    let cmp = CompareSort::default()
        .run(&mut market, &ds.items, AREA)
        .unwrap();
    let hybrid = HybridSort {
        strategy: HybridStrategy::Window { t: 7 },
        ..Default::default()
    }
    .run(&mut market, &ds.items, AREA, 18)
    .unwrap();
    let tau = tau_between_orders(hybrid.trajectory.last().unwrap(), &truth_order).unwrap();
    assert!(tau > 0.93, "hybrid tau={tau}");
    assert!(
        hybrid.hits_posted * 2 < cmp.hits_posted,
        "hybrid={} compare={}",
        hybrid.hits_posted,
        cmp.hits_posted
    );
}

/// §3.4/§6: QualityAdjust "significantly improves result quality …
/// because it effectively filters spammers" — MV can be badly skewed.
#[test]
fn quality_adjust_resists_spam_floods_where_mv_fails() {
    let mut gt = GroundTruth::new();
    let ds = celebrity_dataset(&mut gt, &CelebrityConfig::default().with_celebrities(10));
    let mut cfg = CrowdConfig::default().with_seed(26);
    cfg.workers.spammer_fraction = 0.35; // hostile marketplace
    let mut market = Marketplace::new(&cfg, gt);
    let mv = JoinOp {
        strategy: JoinStrategy::SmartBatch { rows: 3, cols: 3 },
        combiner: CombinerKind::MajorityVote,
        ..Default::default()
    }
    .run(&mut market, &ds.celeb_items, &ds.photo_items, None)
    .unwrap();
    let qa = JoinOp {
        strategy: JoinStrategy::SmartBatch { rows: 3, cols: 3 },
        combiner: CombinerKind::QualityAdjust,
        ..Default::default()
    }
    .run(&mut market, &ds.celeb_items, &ds.photo_items, None)
    .unwrap();
    let tp = |matches: &[(usize, usize)]| {
        matches
            .iter()
            .filter(|&&(i, j)| ds.photo_owner[j] == i)
            .count()
    };
    assert!(
        tp(&qa.matches) >= tp(&mv.matches),
        "QA {} vs MV {}",
        tp(&qa.matches),
        tp(&mv.matches)
    );
    assert!(tp(&qa.matches) >= 6, "qa tp={}", tp(&qa.matches));
}

/// §2.6/§3.3.2: the fixed-price economics — every assignment costs
/// exactly $0.015, so HIT counts are the whole cost story.
#[test]
fn ledger_tracks_exactly_posted_assignments() {
    let (mut market, ds) = celebrity_market(8, 27);
    let out = JoinOp::default()
        .run(&mut market, &ds.celeb_items, &ds.photo_items, None)
        .unwrap();
    let expected_assignments = out.hits_posted as u64 * 5;
    assert_eq!(market.ledger.assignments_paid, expected_assignments);
    assert!((market.ledger.total() - expected_assignments as f64 * 0.015).abs() < 1e-9);
}
