//! Integration tests: full SQL queries through parser → planner →
//! session → simulated marketplace, spanning every crate.

use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::ops::sort::RateSort;
use qurk::prelude::*;
use qurk_crowd::truth::{DimensionParams, PredicateTruth, TextTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

const TASKS: &str = r#"
TASK isFemale(field) TYPE Filter:
    Prompt: "<img src='%s'> Is the person a woman?", tuple[field]
    YesText: "Yes"
    NoText: "No"
    Combiner: MajorityVote
TASK samePerson(f1, f2) TYPE EquiJoin:
    SingularName: "person"
    PluralName: "people"
    LeftNormal: "<img src='%s'>", tuple1[f1]
    RightNormal: "<img src='%s'>", tuple2[f2]
    Combiner: QualityAdjust
TASK gender(field) TYPE Generative:
    Prompt: "<img src='%s'> Gender?", tuple[field]
    Response: Radio("Gender", ["Male", "Female", UNKNOWN])
    Combiner: MajorityVote
TASK byHeight(field) TYPE Rank:
    SingularName: "person"
    PluralName: "people"
    OrderDimensionName: "height"
    LeastName: "shortest"
    MostName: "tallest"
    Html: "<img src='%s'>", tuple[field]
TASK nameOf(field) TYPE Generative:
    Prompt: "<img src='%s'> Who is this?", tuple[field]
    Fields: {
        common: { Response: Text("Name"),
                  Combiner: MajorityVote,
                  Normalizer: LowercaseSingleSpace }
    }
"#;

/// Build a 12-person world with two photo tables, gender features,
/// heights and name text.
fn world(seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    gt.define_dimension("height", DimensionParams::crisp(0.02));
    gt.define_feature("gender", &["Male", "Female"]);
    let n = 12;
    let people = gt.new_items(n);
    let photos = gt.new_items(n);
    for i in 0..n {
        let female = i % 2 == 0;
        for &it in &[people[i], photos[i]] {
            gt.set_entity(it, EntityId(i as u64));
            gt.set_predicate(
                it,
                "isFemale",
                PredicateTruth {
                    value: female,
                    error_rate: 0.03,
                },
            );
            gt.set_feature_simple(it, "gender", usize::from(female), 0.02);
        }
        gt.set_score(people[i], "height", i as f64);
        gt.set_text(
            people[i],
            "common",
            TextTruth {
                variants: vec![
                    (format!("Person {i}"), 0.6),
                    (format!("person   {i} "), 0.4),
                ],
            },
        );
    }

    let mut ppl = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("name", ValueType::Text),
        ("img", ValueType::Item),
    ]));
    let mut ph = Relation::new(Schema::new(&[
        ("pid", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for i in 0..n {
        ppl.push(vec![
            Value::Int(i as i64),
            Value::text(format!("p{i}")),
            Value::Item(people[i]),
        ])
        .unwrap();
        ph.push(vec![Value::Int(i as i64), Value::Item(photos[i])])
            .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register_table("people", ppl);
    catalog.register_table("photos", ph);
    catalog.define_tasks(TASKS).unwrap();
    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);
    (catalog, market)
}

#[test]
fn filter_and_machine_predicate_compose() {
    let (catalog, market) = world(1);
    let mut session = Session::new(&catalog, market);
    let rel = session
        .run("SELECT p.id FROM people p WHERE isFemale(p.img) AND p.id < 6")
        .unwrap();
    let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    // Expect mostly {0, 2, 4}.
    assert!(ids.len() >= 2 && ids.len() <= 4, "ids={ids:?}");
    for id in &ids {
        assert!(*id < 6);
    }
    assert!(ids.contains(&0) || ids.contains(&2));
}

#[test]
fn join_with_possibly_feature_filtering() {
    let (catalog, market) = world(2);
    let mut session = Session::new(&catalog, market);
    let report = session
        .query(
            "SELECT p.id, ph.pid FROM people p JOIN photos ph \
             ON samePerson(p.img, ph.img) \
             AND POSSIBLY gender(p.img) = gender(ph.img)",
        )
        .report()
        .unwrap();
    // Most of the 12 true matches found, few mistakes.
    let correct = report
        .relation
        .rows()
        .iter()
        .filter(|r| r[0].as_int() == r[1].as_int())
        .count();
    assert!(correct >= 9, "correct={correct}");
    assert!(report.relation.len() <= 14);
    // Feature filtering cut the cross product: fewer join HITs than
    // an unfiltered NaiveBatch(5) would need (144/5 = 29) plus
    // extraction overhead.
    assert!(report.hits_posted < 50, "hits={}", report.hits_posted);
}

#[test]
fn order_by_with_limit_returns_top_k() {
    let (catalog, market) = world(3);
    let mut session = Session::new(&catalog, market);
    let rel = session
        .run("SELECT p.id FROM people p ORDER BY byHeight(p.img) DESC LIMIT 3")
        .unwrap();
    let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(ids.len(), 3);
    // Top-3 tallest are 11, 10, 9 (modulo small crowd error).
    for id in &ids {
        assert!(*id >= 8, "ids={ids:?}");
    }
}

#[test]
fn generative_select_produces_normalized_text() {
    let (catalog, market) = world(4);
    let mut session = Session::new(&catalog, market);
    let rel = session
        .run("SELECT p.id, nameOf(p.img).common FROM people p WHERE p.id < 4")
        .unwrap();
    assert_eq!(rel.len(), 4);
    for row in rel.rows() {
        let id = row[0].as_int().unwrap();
        assert_eq!(
            row[1].as_text(),
            Some(format!("person {id}").as_str()),
            "row={row:?}"
        );
    }
}

#[test]
fn task_cache_makes_repeat_queries_free() {
    let (catalog, market) = world(5);
    let mut session = Session::new(&catalog, market);
    let first = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img)")
        .report()
        .unwrap();
    assert!(first.hits_posted > 0);
    let second = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img)")
        .report()
        .unwrap();
    assert_eq!(second.hits_posted, 0, "cached re-run must cost nothing");
    assert_eq!(first.relation, second.relation);
    let (cache_hits, _) = session.cache_stats();
    assert!(cache_hits > 0);
}

#[test]
fn query_builder_controls_join_strategy_cost() {
    let run = |strategy: JoinStrategy| {
        let (catalog, market) = world(6);
        let mut session = Session::new(&catalog, market);
        session
            .query("SELECT p.id FROM people p JOIN photos ph ON samePerson(p.img, ph.img)")
            .join(JoinOp {
                strategy,
                ..Default::default()
            })
            .report()
            .unwrap()
            .hits_posted
    };
    let simple = run(JoinStrategy::Simple);
    let naive = run(JoinStrategy::NaiveBatch(5));
    let smart = run(JoinStrategy::SmartBatch { rows: 3, cols: 3 });
    assert_eq!(simple, 144);
    assert!(naive <= simple / 4, "naive={naive}");
    assert!(smart < naive, "smart={smart} naive={naive}");
}

#[test]
fn rate_sort_mode_is_cheaper_than_compare() {
    let run = |sort: SortMode| {
        let (catalog, market) = world(7);
        let mut session = Session::new(&catalog, market);
        session
            .query("SELECT p.id FROM people p ORDER BY byHeight(p.img)")
            .sort(sort)
            .report()
            .unwrap()
            .hits_posted
    };
    let compare = run(SortMode::default());
    let rate = run(SortMode::Rate(RateSort::default()));
    assert!(
        rate * 3 <= compare,
        "rate={rate} compare={compare} (linear vs quadratic)"
    );
}

#[test]
fn bad_queries_surface_errors_not_panics() {
    let (catalog, market) = world(8);
    let mut session = Session::new(&catalog, market);
    assert!(session.run("SELECT FROM nope").is_err());
    assert!(session.run("SELECT x FROM missing_table").is_err());
    assert!(session
        .run("SELECT p.id FROM people p WHERE notATask(p.img)")
        .is_err());
    assert!(session
        .run("SELECT p.id FROM people p ORDER BY isFemale(p.img)")
        .is_err());
}

#[test]
fn cost_accounting_matches_ledger_arithmetic() {
    let (catalog, market) = world(9);
    let mut session = Session::new(&catalog, market);
    let report = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img)")
        .report()
        .unwrap();
    // 12 items / batch 5 = 3 HITs x 5 assignments x $0.015.
    assert_eq!(report.hits_posted, 3);
    assert_eq!(report.assignments, 15);
    assert!((report.cost_dollars - 3.0 * 5.0 * 0.015).abs() < 1e-9);
    // The metering numbers agree with the marketplace's own ledger.
    let market = session.backend().inner().inner();
    assert_eq!(market.ledger.assignments_paid, 15);
    assert!((market.ledger.total() - report.cost_dollars).abs() < 1e-9);
}

/// The deprecated `Executor` path must keep compiling and return the
/// same rows and cost numbers as the `Session` path on the same
/// seeded world.
#[test]
#[allow(deprecated)]
fn executor_shim_matches_session_path() {
    for (seed, sql) in [
        (10, "SELECT p.id FROM people p WHERE isFemale(p.img)"),
        (
            11,
            "SELECT p.id FROM people p ORDER BY byHeight(p.img) DESC LIMIT 3",
        ),
        (
            12,
            "SELECT p.id, ph.pid FROM people p JOIN photos ph ON samePerson(p.img, ph.img)",
        ),
    ] {
        let (catalog, mut market) = world(seed);
        let mut ex = Executor::new(&catalog, &mut market);
        let old = ex.query_report(sql).unwrap();
        let (catalog2, market2) = world(seed);
        let mut session = Session::new(&catalog2, market2);
        let new = session.query(sql).report().unwrap();
        assert_eq!(old.relation, new.relation, "{sql}");
        assert_eq!(old.hits_posted, new.hits_posted, "{sql}");
        assert!(
            (old.cost_dollars - new.cost_dollars).abs() < 1e-9,
            "{sql}: {} vs {}",
            old.cost_dollars,
            new.cost_dollars
        );
    }
}
