//! Regression: a tenant query that fails mid-flight must release (not
//! leak) its in-flight dedup slots in the shared task cache.
//!
//! Before the fix, a failed query's live-posted spec keys stayed in
//! `CachingBackend::pending` forever, so every later identical spec —
//! from any tenant — piggybacked (`VirtualSource::Shared`) on rounds
//! nobody was driving to completion, and the retry starved instead of
//! re-posting.

use qurk::backend::ReplayBackend;
use qurk::service::QueryService;
use qurk::{Catalog, Relation, ReplayTrace, Schema, Value, ValueType};
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

const FILTER_SQL: &str = "SELECT p.id FROM people AS p WHERE isTall(p.img)";
const SORT_SQL: &str = "SELECT p.id FROM people AS p ORDER BY byHeight(p.img)";

fn world() -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    gt.define_dimension("height", DimensionParams::crisp(0.02));
    let items = gt.new_items(8);
    for (i, &it) in items.iter().enumerate() {
        gt.set_predicate(
            it,
            "isTall",
            PredicateTruth {
                value: i >= 4,
                error_rate: 0.0,
            },
        );
        gt.set_score(it, "height", i as f64);
        gt.set_entity(it, EntityId(i as u64));
    }
    let market = Marketplace::new(&CrowdConfig::default().with_seed(11), gt);

    let mut catalog = Catalog::new();
    let mut people = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in items.iter().enumerate() {
        people
            .push(vec![Value::Int(i as i64), Value::Item(it)])
            .expect("people row matches schema");
    }
    catalog.register_table("people", people);
    catalog
        .define_tasks(
            r#"TASK isTall(field) TYPE Filter:
                Prompt: "<img src='%s'> Tall?", tuple[field]
               TASK byHeight(field) TYPE Rank:
                OrderDimensionName: "height"
                Html: "<img src='%s'>", tuple[field]
            "#,
        )
        .expect("task definitions parse");
    (catalog, market)
}

/// A failed query's dedup slots are released, and the retry re-posts
/// live instead of piggybacking on the abandoned group.
#[test]
fn failed_query_releases_in_flight_slots() {
    let (catalog, _market) = world();
    // An empty replay trace answers nothing: every posted round times
    // out and the query fails with CrowdIncomplete.
    let backend = ReplayBackend::from_trace(ReplayTrace::default());
    let mut svc = QueryService::new(&catalog, backend);
    svc.register_tenant("alice", None);

    svc.submit("alice", FILTER_SQL)
        .expect("query is admissible");
    let reports = svc.run_pending();
    assert_eq!(reports.len(), 1);
    assert!(reports[0].is_err(), "unanswerable query must fail");
    assert_eq!(
        svc.market().pending_specs(),
        0,
        "failed query leaked its in-flight dedup slots"
    );

    // The retry must post live again — before the fix it piggybacked
    // (shared_hits > 0) on the dead group and starved the same way
    // without ever re-posting.
    let (_, misses_before) = svc.market().cache_stats();
    svc.submit("alice", FILTER_SQL)
        .expect("retry is admissible");
    let reports = svc.run_pending();
    assert!(reports[0].is_err(), "still unanswerable — but live");
    let (_, misses_after) = svc.market().cache_stats();
    assert_eq!(svc.market().shared_hits(), 0, "retry must not piggyback");
    assert!(
        misses_after > misses_before,
        "retry must re-post live specs"
    );
    assert_eq!(svc.market().pending_specs(), 0, "retry released too");
}

/// The release only touches the failed query's own slots: a successful
/// concurrent query's cache entries survive and keep serving.
#[test]
fn release_is_scoped_to_the_failed_query() {
    use qurk::backend::RecordingBackend;

    // Record answers for the filter workload only.
    let (catalog, market) = world();
    let mut rec = RecordingBackend::new(market);
    {
        let mut svc = QueryService::new(&catalog, &mut rec);
        svc.register_tenant("alice", None);
        svc.submit("alice", FILTER_SQL).expect("admissible");
        let reports = svc.run_pending();
        assert!(reports[0].is_ok(), "live recording run succeeds");
    }
    let trace = rec.into_trace();

    // bob's sort is NOT in the trace (fails); alice's filter is.
    let backend = ReplayBackend::from_trace(trace);
    let mut svc = QueryService::new(&catalog, backend);
    svc.register_tenant("alice", None);
    svc.register_tenant("bob", None);
    svc.submit("alice", FILTER_SQL).expect("admissible");
    svc.submit("bob", SORT_SQL).expect("admissible");
    let reports = svc.run_pending();
    assert!(reports[0].is_ok(), "alice's replayed filter succeeds");
    assert!(reports[1].is_err(), "bob's untraced sort fails");
    assert_eq!(svc.market().pending_specs(), 0);

    // Alice can re-run for free off the cache.
    svc.submit("alice", FILTER_SQL).expect("admissible");
    let reports = svc.run_pending();
    assert!(reports[0].is_ok(), "cache still serves alice");
}
