//! The `CrowdBackend` contract, checked against every production
//! implementation: the raw `Marketplace`, `CachingBackend`,
//! `MeteringBackend` — and the `ReplayBackend` test double, which must
//! satisfy the same contract when its trace covers the posted specs.
//!
//! Contract (see `qurk::backend` docs):
//! 1. `group_hits` returns a group's HITs in spec order, and
//!    `hit_question_count` resolves each of them.
//! 2. After `run` returns `Completed`, every HIT has exactly its
//!    requested number of assignments, each from a distinct worker.
//! 3. `now` is monotone non-decreasing; latencies are non-negative.
//! 4. `hits_posted` / `spend_dollars` / `assignments_completed` are
//!    monotone counters.

use std::collections::{HashMap, HashSet};

use qurk::backend::{CachingBackend, MeteringBackend, RecordingBackend, ReplayBackend};
use qurk::ops::filter::FilterOp;
use qurk::prelude::*;
use qurk::ReplayTrace;
use qurk_crowd::market::RunOutcome;
use qurk_crowd::question::{HitKind, Question};
use qurk_crowd::truth::PredicateTruth;
use qurk_crowd::{CrowdConfig, GroundTruth, HitSpec, ItemId, Marketplace};

fn marketplace(n: usize, seed: u64) -> (Marketplace, Vec<ItemId>) {
    let mut gt = GroundTruth::new();
    let items = gt.new_items(n);
    for (i, &it) in items.iter().enumerate() {
        gt.set_predicate(
            it,
            "p",
            PredicateTruth {
                value: i % 2 == 0,
                error_rate: 0.03,
            },
        );
    }
    (
        Marketplace::new(&CrowdConfig::default().with_seed(seed), gt),
        items,
    )
}

fn filter_specs(items: &[ItemId], per_hit: usize) -> Vec<HitSpec> {
    items
        .chunks(per_hit)
        .map(|chunk| {
            HitSpec::new(
                chunk
                    .iter()
                    .map(|&item| Question::Filter {
                        item,
                        predicate: "p".into(),
                    })
                    .collect(),
                HitKind::Filter,
            )
        })
        .collect()
}

/// Drive one backend through the full contract.
fn check_contract<B: CrowdBackend>(backend: &mut B, items: &[ItemId]) {
    let t0 = backend.now().secs();
    let hits_before = backend.hits_posted();
    let spend_before = backend.spend_dollars();

    // Two HITs of unequal size so question counts are distinguishable.
    let specs = filter_specs(&items[..6], 4); // 4 + 2 questions
    let question_counts: Vec<usize> = specs.iter().map(|s| s.questions.len()).collect();
    let group = backend.post_group_with_assignments(specs, 3);

    // (1) spec order and question counts.
    let hits = backend.group_hits(group);
    assert_eq!(hits.len(), 2);
    for (h, want) in hits.iter().zip(&question_counts) {
        assert_eq!(backend.hit_question_count(*h), *want);
    }

    assert_eq!(backend.run_to_completion(), RunOutcome::Completed);
    assert_eq!(backend.group_outstanding(group), 0);

    // (2) exact assignment counts, distinct workers per HIT, answer
    // arity matching the questions.
    let assignments = backend.assignments(group);
    assert_eq!(assignments.len(), 2 * 3);
    let mut per_hit: HashMap<_, Vec<_>> = HashMap::new();
    for a in &assignments {
        assert_eq!(a.group, group);
        assert!(hits.contains(&a.hit), "assignment for foreign hit");
        let nq = backend.hit_question_count(a.hit);
        assert_eq!(a.answers.len(), nq);
        assert!(a.submitted_at.secs() >= a.accepted_at.secs());
        per_hit.entry(a.hit).or_default().push(a.worker);
    }
    for workers in per_hit.values() {
        let distinct: HashSet<_> = workers.iter().collect();
        assert_eq!(distinct.len(), workers.len(), "repeat worker on a HIT");
    }

    // (3) time and latencies.
    assert!(backend.now().secs() >= t0);
    let lats = backend.group_latencies(group);
    assert_eq!(lats.len(), assignments.len());
    assert!(lats.iter().all(|&l| l >= 0.0));

    // (4) counters moved the right way.
    assert_eq!(backend.hits_posted() - hits_before, 2);
    assert!(backend.spend_dollars() >= spend_before);
    assert!(backend.assignments_completed() >= 6);

    // Banning must not disturb completed work.
    backend.ban_workers(assignments.iter().map(|a| a.worker).take(1).collect());
    assert_eq!(backend.assignments(group).len(), 6);
}

#[test]
fn marketplace_satisfies_contract() {
    let (mut m, items) = marketplace(10, 71);
    check_contract(&mut m, &items);
}

#[test]
fn caching_backend_satisfies_contract() {
    let (m, items) = marketplace(10, 72);
    let mut b = CachingBackend::new(m);
    check_contract(&mut b, &items);
}

#[test]
fn metering_backend_satisfies_contract() {
    let (m, items) = marketplace(10, 73);
    let mut b = MeteringBackend::new(m);
    check_contract(&mut b, &items);
}

#[test]
fn full_session_stack_satisfies_contract() {
    let (m, items) = marketplace(10, 74);
    let mut b = MeteringBackend::new(CachingBackend::new(m));
    check_contract(&mut b, &items);
}

#[test]
fn replay_backend_satisfies_contract_on_recorded_specs() {
    // Record the exact workload the contract checker posts...
    let (m, items) = marketplace(10, 75);
    let mut rec = RecordingBackend::new(m);
    let g = rec.post_group_with_assignments(filter_specs(&items[..6], 4), 3);
    rec.run_to_completion();
    let _ = rec.assignments(g);
    // ...then replay it with no marketplace at all. Replay charges the
    // paper price per assignment, so the spend counter still moves.
    let mut replay = ReplayBackend::from_trace(rec.into_trace());
    check_contract(&mut replay, &items);
}

/// The same operator produces the same decisions through every
/// backend wrapper (identical marketplace seed ⇒ identical crowd).
#[test]
fn operators_agree_across_backends() {
    let direct = {
        let (mut m, items) = marketplace(12, 76);
        FilterOp::default().run(&mut m, "p", &items).unwrap()
    };
    let cached = {
        let (m, items) = marketplace(12, 76);
        let mut b = CachingBackend::new(m);
        FilterOp::default().run(&mut b, "p", &items).unwrap()
    };
    let metered = {
        let (m, items) = marketplace(12, 76);
        let mut b = MeteringBackend::new(m);
        FilterOp::default().run(&mut b, "p", &items).unwrap()
    };
    assert_eq!(direct, cached);
    assert_eq!(direct, metered);
}

/// Record a full operator run against the marketplace, then re-run
/// the operator against the replayed trace: identical output, zero
/// marketplace involvement.
#[test]
fn replayed_operator_run_matches_original() {
    let (m, items) = marketplace(15, 77);
    let mut rec = RecordingBackend::new(m);
    let op = FilterOp::default();
    let original = op.run(&mut rec, "p", &items).unwrap();
    let trace = rec.into_trace();
    assert!(!trace.is_empty());

    let mut replay = ReplayBackend::from_trace(trace);
    let replayed = op.run(&mut replay, "p", &items).unwrap();
    assert_eq!(original, replayed);
    assert_eq!(replay.hits_posted(), 3); // 15 items / batch 5

    // A *different* workload is not answerable from this trace.
    let mut replay2 = ReplayBackend::from_trace(ReplayTrace::default());
    let err = op.run(&mut replay2, "p", &items);
    assert!(
        matches!(err, Err(QurkError::CrowdIncomplete { .. })),
        "{err:?}"
    );
}
