//! Property tests for `StatisticsStore::merge` and its durable
//! persistence (`DurableStore::append_stats_delta`).
//!
//! Stores are generated from random op sequences whose float inputs
//! are dyadic rationals (multiples of 1/8), so every sum the merge
//! performs is exact in binary floating point and the algebraic
//! properties can be asserted with `==` instead of epsilons:
//!
//! * merge is **associative**: `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)`;
//! * merge is **order-insensitive up to the documented tiebreak**:
//!   every tallied estimate agrees between `a ⊔ b` and `b ⊔ a`, and
//!   `features` follows latest-wins (the store merged later supplies
//!   the surviving κ/σ sample);
//! * a store journaled as deltas and reloaded from disk — including
//!   through a compaction — is `==` to the in-memory original.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use qurk::{DurableStore, StatisticsStore};

const FILTERS: [&str; 2] = ["f1", "f2"];
const JOINS: [&str; 2] = ["j1", "j2"];
const FEATURES: [&str; 2] = ["ft1", "ft2"];
const SORTS: [&str; 2] = ["s1", "s2"];

/// One recorded observation: (kind, key index, x, y). Float inputs are
/// derived as small dyadic rationals so merge arithmetic is exact.
type Op = (u8, u8, u64, u64);

fn apply(store: &mut StatisticsStore, &(kind, key, x, y): &Op) {
    let key = key as usize % 2;
    match kind % 6 {
        0 => store.record_filter(FILTERS[key], x as usize, (y.min(x)) as usize),
        1 => store.record_join(JOINS[key], x as usize, (y.min(x)) as usize),
        2 => store.record_feature(FEATURES[key], (x % 9) as f64 / 8.0, (y % 9) as f64 / 8.0),
        3 => store.record_sort(SORTS[key], (x % 17) as f64 / 8.0),
        4 => store.record_epoch(x, (y % 64) as f64 * 0.25),
        _ => store.record_round((x % 32) as f64 * 0.5, (y % 64) as f64 * 0.25),
    }
}

fn build(ops: &[Op]) -> StatisticsStore {
    let mut s = StatisticsStore::new();
    for op in ops {
        apply(&mut s, op);
    }
    s
}

fn merged(a: &StatisticsStore, b: &StatisticsStore) -> StatisticsStore {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn tmp_store_path() -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "qurk-stats-persist-{}-{}.qwal",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..6, 0u8..2, 0u64..50, 0u64..50), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative(
        ops_a in ops_strategy(),
        ops_b in ops_strategy(),
        ops_c in ops_strategy(),
    ) {
        let (a, b, c) = (build(&ops_a), build(&ops_b), build(&ops_c));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_order_insensitive_up_to_feature_tiebreak(
        ops_a in ops_strategy(),
        ops_b in ops_strategy(),
    ) {
        let (a, b) = (build(&ops_a), build(&ops_b));
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);

        // Every tallied estimate is commutative...
        for k in FILTERS {
            prop_assert_eq!(ab.filter_selectivity(k), ba.filter_selectivity(k));
        }
        for k in JOINS {
            prop_assert_eq!(ab.join_selectivity(k), ba.join_selectivity(k));
        }
        for k in SORTS {
            prop_assert_eq!(ab.sort_ambiguity(k), ba.sort_ambiguity(k));
        }
        prop_assert_eq!(ab.secs_per_hit(), ba.secs_per_hit());
        prop_assert_eq!(ab.latency_params(), ba.latency_params());

        // ...and features follow the documented latest-wins tiebreak:
        // the store merged later provides the surviving sample.
        for k in FEATURES {
            let want_ab = b.feature(k).or_else(|| a.feature(k));
            let want_ba = a.feature(k).or_else(|| b.feature(k));
            prop_assert_eq!(ab.feature(k), want_ab);
            prop_assert_eq!(ba.feature(k), want_ba);
        }
    }

    #[test]
    fn persisted_then_reloaded_store_is_equal(
        ops_a in ops_strategy(),
        ops_b in ops_strategy(),
    ) {
        let (a, b) = (build(&ops_a), build(&ops_b));
        let want = merged(&a, &b);
        let path = tmp_store_path();

        // Journal as two separate deltas (the shape the service's
        // commit loop produces), then reload from the bytes.
        {
            let store = DurableStore::open(&path).expect("fresh store opens");
            store.append_stats_delta(&a);
            store.append_stats_delta(&b);
        }
        {
            let store = DurableStore::open(&path).expect("store reopens");
            prop_assert_eq!(store.stats_snapshot(), want.clone());

            // Compaction rewrites the log as one snapshot record; the
            // reloaded state must be unchanged by it.
            store.compact_now();
        }
        {
            let store = DurableStore::open(&path).expect("store reopens after compaction");
            prop_assert_eq!(store.stats_snapshot(), want);
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// The store is shareable; deltas appended through clones of one
/// `Arc<DurableStore>` land in one log.
#[test]
fn deltas_through_shared_handles_accumulate() {
    let mut a = StatisticsStore::new();
    a.record_filter("f1", 10, 5);
    let mut b = StatisticsStore::new();
    b.record_filter("f1", 10, 3);

    let path = tmp_store_path();
    {
        let store = Arc::new(DurableStore::open(&path).expect("fresh store opens"));
        let clone = Arc::clone(&store);
        store.append_stats_delta(&a);
        clone.append_stats_delta(&b);
    }
    let store = DurableStore::open(&path).expect("store reopens");
    assert_eq!(store.stats_snapshot().filter_selectivity("f1"), Some(0.4));
    let _ = std::fs::remove_file(&path);
}
