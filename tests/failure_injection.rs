//! Failure-injection tests: the engine must surface crowd failures
//! (refused batches, starved groups, exhausted time budgets) as typed
//! errors, never hang or panic — §4.2.2's stalled group-size-20
//! experiment is a *normal* outcome on a real marketplace.

use qurk::ops::filter::FilterOp;
use qurk::ops::sort::CompareSort;
use qurk::prelude::*;
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};

fn sortable_world(n: usize) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    gt.define_dimension("d", DimensionParams::crisp(0.02));
    let items = gt.new_items(n);
    for (i, &it) in items.iter().enumerate() {
        gt.set_score(it, "d", i as f64);
        gt.set_predicate(
            it,
            "p",
            PredicateTruth {
                value: true,
                error_rate: 0.03,
            },
        );
    }
    let mut rel = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in items.iter().enumerate() {
        rel.push(vec![Value::Int(i as i64), Value::Item(it)])
            .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register_table("t", rel);
    catalog
        .define_tasks(
            r#"TASK p(field) TYPE Filter:
                Prompt: "%s?", tuple[field]
               TASK byD(field) TYPE Rank:
                OrderDimensionName: "d"
            "#,
        )
        .unwrap();
    (catalog, Marketplace::new(&CrowdConfig::default(), gt))
}

#[test]
fn oversized_compare_groups_error_cleanly_through_sql() {
    let (catalog, market) = sortable_world(25);
    let mut session = Session::new(&catalog, market);
    // Group size 25 => ~120 work units: nobody accepts. Budget 6 h.
    let err = session
        .query("SELECT id FROM t ORDER BY byD(t.img)")
        .sort(SortMode::Compare(CompareSort {
            group_size: 25,
            limit_secs: 6.0 * 3600.0,
            ..Default::default()
        }))
        .run();
    assert!(
        matches!(err, Err(QurkError::CrowdIncomplete { outstanding }) if outstanding > 0),
        "expected CrowdIncomplete, got {err:?}"
    );
}

#[test]
fn zero_time_budget_times_out_not_hangs() {
    let (catalog, market) = sortable_world(10);
    let mut session = Session::new(&catalog, market);
    let err = session
        .query("SELECT id FROM t WHERE p(t.img)")
        .filter(FilterOp {
            limit_secs: 1.0, // one virtual second
            ..Default::default()
        })
        .run();
    assert!(
        matches!(err, Err(QurkError::CrowdIncomplete { .. })),
        "{err:?}"
    );
}

#[test]
fn market_recovers_after_a_timed_out_group() {
    // A stalled group must not wedge the marketplace: later, acceptable
    // work still completes (the stalled HITs stay outstanding).
    let (catalog, mut market) = sortable_world(12);
    {
        let mut session = Session::new(&catalog, &mut market);
        let _ = session
            .query("SELECT id FROM t ORDER BY byD(t.img)")
            .sort(SortMode::Compare(CompareSort {
                group_size: 12,
                limit_secs: 2.0 * 3600.0,
                ..Default::default()
            }))
            .run();
    }
    let mut session = Session::new(&catalog, &mut market);
    let out = session.run("SELECT id FROM t WHERE p(t.img)").unwrap();
    assert!(out.len() >= 11, "filter after stall found {}", out.len());
}

#[test]
fn requesting_more_assignments_than_workers_is_rejected() {
    let mut gt = GroundTruth::new();
    let item = gt.new_item();
    gt.set_predicate(
        item,
        "p",
        PredicateTruth {
            value: true,
            error_rate: 0.0,
        },
    );
    let mut cfg = CrowdConfig::default();
    cfg.workers.num_workers = 3;
    let mut market = Marketplace::new(&cfg, gt);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        market.post_group_with_assignments(
            vec![qurk_crowd::HitSpec::new(
                vec![qurk_crowd::Question::Filter {
                    item,
                    predicate: "p".into(),
                }],
                qurk_crowd::question::HitKind::Filter,
            )],
            10,
        )
    }));
    assert!(
        result.is_err(),
        "over-requesting assignments must be rejected"
    );
}

#[test]
fn tiny_pool_still_completes_with_matching_assignments() {
    let mut gt = GroundTruth::new();
    let items = gt.new_items(6);
    for &it in &items {
        gt.set_predicate(
            it,
            "p",
            PredicateTruth {
                value: true,
                error_rate: 0.02,
            },
        );
    }
    let mut cfg = CrowdConfig::default().with_assignments(5);
    cfg.workers.num_workers = 6; // barely enough distinct workers
    let mut market = Marketplace::new(&cfg, gt);
    let op = FilterOp::default();
    let out = op.run(&mut market, "p", &items).unwrap();
    assert_eq!(out.len(), 6);
    assert!(out.iter().filter(|&&b| b).count() >= 5);
}

#[test]
fn unregistered_ground_truth_degrades_to_noise_not_panic() {
    // Items with no predicate registered: workers coin-flip; the
    // engine still completes and returns *some* decision.
    let mut gt = GroundTruth::new();
    let items = gt.new_items(8);
    let mut market = Marketplace::new(&CrowdConfig::default(), gt);
    let op = FilterOp::default();
    let out = op.run(&mut market, "never_registered", &items).unwrap();
    assert_eq!(out.len(), 8);
}
