//! The deterministic fault-injection sweep behind `qurk::store`'s
//! recovery guarantees (the CI `fault-matrix` job runs this file with
//! `--release`).
//!
//! For every [`CrashPoint`] in the catalogue × several seeds, the
//! harness:
//!
//! 1. records one ground-truth trace of a three-tenant workload on a
//!    live marketplace (once per seed);
//! 2. runs the same workload on a durable [`QueryService`] whose store
//!    is armed to **die** at the crash point (a process crash, modeled
//!    byte-exactly: every later write is a no-op, torn points leave a
//!    genuinely garbage tail), then discards everything in memory;
//! 3. reopens the same store path fault-free, calls
//!    [`QueryService::recover`], re-submits whatever was never
//!    checkpointed, and runs to completion on a fresh replay of the
//!    same trace.
//!
//! Invariants asserted for every (crash point, seed) cell:
//!
//! * **no double-pay** — no spec key with a durable paid answer is
//!   ever posted again after recovery (checked against the recovery
//!   run's [`RecordingBackend`] trace);
//! * **no lost work** — every durable cache entry is byte-equal to
//!   the original trace's entry for that key (a paid, acknowledged
//!   round survived the crash intact);
//! * **byte-identical results** — every query's recovered relation
//!   equals the uninterrupted reference run's relation;
//! * **the books balance** — recovery-run spend attributed across
//!   tenants equals the marketplace's total new spend, and the
//!   reference run's tenant spends sum to its market total.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use qurk::backend::{RecordingBackend, ReplayBackend};
use qurk::service::QueryService;
use qurk::store::{CrashPoint, DurableStore, FaultPlan};
use qurk::{Catalog, ExecConfig, OptimizeMode, Relation, ReplayTrace, Schema, Value, ValueType};
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

const SEEDS: u64 = 8;
/// Tiny threshold so the sweep actually reaches the compaction crash
/// points (production default is 1 MiB).
const COMPACT_THRESHOLD: u64 = 512;

const FILTER_SQL: &str = "SELECT p.id FROM people AS p WHERE isTall(p.img)";
const SORT_SQL: &str = "SELECT p.id FROM people AS p ORDER BY byHeight(p.img)";

/// (tenant, budget, sql) — carol repeats alice's filter so the sweep
/// also covers cross-tenant dedup under recovery.
fn workload() -> Vec<(&'static str, Option<f64>, &'static str)> {
    vec![
        ("alice", Some(50.0), FILTER_SQL),
        ("bob", None, SORT_SQL),
        ("carol", None, FILTER_SQL),
    ]
}

/// Plans must not depend on what statistics happened to become durable
/// before the crash, or "byte-identical" would be unfalsifiable; pin
/// the optimizer to as-written plans for every run of the sweep.
fn sweep_config() -> ExecConfig {
    ExecConfig {
        optimize: OptimizeMode::AsWritten,
        ..ExecConfig::default()
    }
}

fn world(seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    gt.define_dimension("height", DimensionParams::crisp(0.02));
    let items = gt.new_items(10);
    for (i, &it) in items.iter().enumerate() {
        gt.set_predicate(
            it,
            "isTall",
            PredicateTruth {
                value: i >= 5,
                error_rate: 0.03,
            },
        );
        gt.set_score(it, "height", i as f64);
        gt.set_entity(it, EntityId(i as u64));
    }
    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);

    let mut catalog = Catalog::new();
    let mut people = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in items.iter().enumerate() {
        people
            .push(vec![Value::Int(i as i64), Value::Item(it)])
            .expect("people row matches schema");
    }
    catalog.register_table("people", people);
    catalog
        .define_tasks(
            r#"TASK isTall(field) TYPE Filter:
                Prompt: "<img src='%s'> Tall?", tuple[field]
               TASK byHeight(field) TYPE Rank:
                OrderDimensionName: "height"
                Html: "<img src='%s'>", tuple[field]
            "#,
        )
        .expect("task definitions parse");
    (catalog, market)
}

fn store_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "qurk-crash-matrix-{}-{tag}.qwal",
        std::process::id()
    ))
}

fn register_and_submit(svc: &mut QueryService<'_, impl qurk::CrowdBackend>) {
    for (tenant, budget, _) in workload() {
        svc.register_tenant(tenant, budget);
    }
    for (tenant, _, sql) in workload() {
        svc.submit(tenant, sql)
            .expect("sweep workload is admissible");
    }
}

/// Record the ground-truth trace for one seed on a live marketplace.
fn record_trace(catalog: &Catalog, market: Marketplace) -> ReplayTrace {
    let mut svc = QueryService::with_config(catalog, RecordingBackend::new(market), sweep_config());
    register_and_submit(&mut svc);
    for report in svc.run_pending() {
        report.expect("live recording run succeeds");
    }
    svc.into_backend().into_trace()
}

/// The uninterrupted run every recovery must be byte-identical to:
/// relations per (tenant, sql), plus the reference books invariant.
fn reference_run(
    catalog: &Catalog,
    trace: &ReplayTrace,
    tag: &str,
) -> HashMap<(String, String), Relation> {
    let path = store_path(tag);
    let _ = std::fs::remove_file(&path);
    let store = Arc::new(
        DurableStore::open(&path)
            .expect("fresh reference store opens")
            .with_compact_threshold(COMPACT_THRESHOLD),
    );
    let backend = RecordingBackend::new(ReplayBackend::from_trace(trace.clone()));
    let mut svc = QueryService::with_store(catalog, backend, sweep_config(), store);
    register_and_submit(&mut svc);
    let reports = svc.run_pending();

    let mut spent_sum = 0.0;
    for (tenant, _, _) in workload() {
        spent_sum += svc.tenant_spent(tenant).expect("tenant registered");
    }
    let total = svc.market().total_spend();
    assert!(
        (spent_sum - total).abs() < 1e-6,
        "reference books: tenants sum to {spent_sum}, market total {total}"
    );

    let mut relations = HashMap::new();
    for ((tenant, _, sql), report) in workload().into_iter().zip(reports) {
        let report = report.expect("reference run succeeds");
        relations.insert((tenant.to_owned(), sql.to_owned()), report.relation);
    }
    let _ = std::fs::remove_file(&path);
    relations
}

/// One sweep cell: crash at `point` (occurrence `occ`) on a fresh
/// store, recover, assert every invariant.
fn crash_and_recover(
    catalog: &Catalog,
    trace: &ReplayTrace,
    reference: &HashMap<(String, String), Relation>,
    point: CrashPoint,
    occ: u32,
    tag: &str,
) {
    let path = store_path(tag);
    let _ = std::fs::remove_file(&path);

    // ---- phase A: run with the fault armed, then "crash" (drop
    // everything in memory; only the durable file survives).
    {
        let store = Arc::new(
            DurableStore::open_with_faults(&path, FaultPlan::at(point).on_occurrence(occ))
                .expect("fresh store opens")
                .with_compact_threshold(COMPACT_THRESHOLD),
        );
        let backend = ReplayBackend::from_trace(trace.clone());
        let mut svc =
            QueryService::with_store(catalog, backend, sweep_config(), Arc::clone(&store));
        register_and_submit(&mut svc);
        let _ = svc.run_pending(); // results die with the process
        if occ == 1 {
            // The workload reaches every catalogue point at least once
            // (the tiny threshold forces compactions), so the first
            // occurrence always fires.
            assert!(
                store.is_dead(),
                "{point} occurrence 1 never fired — the sweep is not exercising it"
            );
        }
    }

    recover_and_check(catalog, trace, reference, &path, &format!("{point}:{occ}"));
    let _ = std::fs::remove_file(&path);
}

/// Phase B: reopen `path` fault-free, recover, finish the workload,
/// and assert the no-double-pay / no-loss / byte-identical / books
/// invariants against the reference run.
fn recover_and_check(
    catalog: &Catalog,
    trace: &ReplayTrace,
    reference: &HashMap<(String, String), Relation>,
    path: &std::path::Path,
    label: &str,
) {
    let store = Arc::new(
        DurableStore::open(path)
            .expect("store reopens after a crash")
            .with_compact_threshold(COMPACT_THRESHOLD),
    );
    let recovered_cache = store.cache_snapshot();
    let recovered_spent: HashMap<String, f64> = store
        .tenants_snapshot()
        .into_iter()
        .map(|t| (t.name, t.spent))
        .collect();
    let live: Vec<(String, String)> = store
        .live_checkpoints()
        .into_iter()
        .map(|c| (c.tenant, c.sql))
        .collect();

    // No lost work: everything durable is a round the crowd really
    // answered, intact.
    for (key, entry) in &recovered_cache {
        assert_eq!(
            trace.get(*key),
            Some(entry),
            "{label}: durable cache entry for key {key} does not match the paid original"
        );
    }

    let backend = RecordingBackend::new(ReplayBackend::from_trace(trace.clone()));
    let mut svc = QueryService::with_store(catalog, backend, sweep_config(), Arc::clone(&store));
    for (tenant, budget, _) in workload() {
        svc.register_tenant(tenant, budget);
    }
    let resumed = svc.recover();
    assert_eq!(resumed, live.len(), "{label}: recover() count");

    // A client re-issues whatever was never durably admitted (or was
    // already acknowledged — re-running those must be free and equal).
    let mut expected: Vec<(String, String)> = live.clone();
    let mut remaining = live;
    for (tenant, _, sql) in workload() {
        let pair = (tenant.to_owned(), sql.to_owned());
        if let Some(pos) = remaining.iter().position(|p| *p == pair) {
            remaining.remove(pos);
        } else {
            svc.submit(tenant, sql).expect("resubmission is admissible");
            expected.push(pair);
        }
    }

    let reports = svc.run_pending();
    assert_eq!(reports.len(), expected.len());
    for ((tenant, sql), report) in expected.into_iter().zip(reports) {
        let report =
            report.unwrap_or_else(|e| panic!("{label}: recovered query for {tenant} failed: {e}"));
        let want = &reference[&(tenant.clone(), sql.clone())];
        assert_eq!(
            &report.relation, want,
            "{label}: {tenant}'s recovered result differs from the uninterrupted run"
        );
    }

    // The books balance: new spend attributed across tenants equals
    // the marketplace's total spend this process.
    let mut new_spend = 0.0;
    for (tenant, _, _) in workload() {
        let before = recovered_spent.get(tenant).copied().unwrap_or(0.0);
        new_spend += svc.tenant_spent(tenant).expect("tenant registered") - before;
    }
    let market_total = svc.market().total_spend();
    assert!(
        (new_spend - market_total).abs() < 1e-6,
        "{label}: tenants' new spend {new_spend} != market total {market_total}"
    );

    // No double-pay: nothing with a durable paid answer was re-posted.
    let posted = svc.into_backend().into_trace();
    for key in posted.keys() {
        assert!(
            !recovered_cache.contains_key(&key),
            "{label}: spec key {key} was paid for before the crash and re-posted after"
        );
    }
}

#[test]
fn every_crash_point_recovers_across_seeds() {
    for seed in 0..SEEDS {
        let (catalog, market) = world(seed);
        let trace = record_trace(&catalog, market);
        assert!(!trace.is_empty(), "seed {seed}: recorded trace is empty");
        let reference = reference_run(&catalog, &trace, &format!("ref-{seed}"));

        for point in CrashPoint::ALL {
            // Vary the occurrence with the seed so later firings of
            // each point are swept too, not just the first.
            let occ = 1 + (seed % 3) as u32;
            crash_and_recover(
                &catalog,
                &trace,
                &reference,
                point,
                occ,
                &format!("{}-{seed}", point.name()),
            );
        }
    }
}

/// Recovery of a half-run batch must also converge when the *same*
/// store is reopened twice in a row (crash during recovery itself is
/// just another crash).
#[test]
fn double_crash_then_recover_converges() {
    let seed = 3;
    let (catalog, market) = world(seed);
    let trace = record_trace(&catalog, market);
    let reference = reference_run(&catalog, &trace, "ref-double");
    let path = store_path("double");
    let _ = std::fs::remove_file(&path);

    // Crash #1: die on the second append.
    {
        let store = Arc::new(
            DurableStore::open_with_faults(
                &path,
                FaultPlan::at(CrashPoint::AppendDone).on_occurrence(2),
            )
            .expect("store opens")
            .with_compact_threshold(COMPACT_THRESHOLD),
        );
        let mut svc = QueryService::with_store(
            &catalog,
            ReplayBackend::from_trace(trace.clone()),
            sweep_config(),
            store,
        );
        register_and_submit(&mut svc);
        let _ = svc.run_pending();
    }
    // Crash #2: die again, mid-recovery-run, on a torn compaction.
    {
        let store = Arc::new(
            DurableStore::open_with_faults(
                &path,
                FaultPlan::at(CrashPoint::CompactTorn).on_occurrence(1),
            )
            .expect("store reopens")
            .with_compact_threshold(COMPACT_THRESHOLD),
        );
        let mut svc = QueryService::with_store(
            &catalog,
            ReplayBackend::from_trace(trace.clone()),
            sweep_config(),
            Arc::clone(&store),
        );
        for (tenant, budget, _) in workload() {
            svc.register_tenant(tenant, budget);
        }
        let live: Vec<(String, String)> = store
            .live_checkpoints()
            .into_iter()
            .map(|c| (c.tenant, c.sql))
            .collect();
        svc.recover();
        let mut remaining = live;
        for (tenant, _, sql) in workload() {
            let pair = (tenant.to_owned(), sql.to_owned());
            if let Some(pos) = remaining.iter().position(|p| *p == pair) {
                remaining.remove(pos);
            } else {
                svc.submit(tenant, sql).expect("resubmission is admissible");
            }
        }
        let _ = svc.run_pending();
    }
    // Final recovery: everything still converges to the reference.
    recover_and_check(&catalog, &trace, &reference, &path, "double-crash");
    let _ = std::fs::remove_file(&path);
}
