//! Golden tests for the pre-flight analyzer: every QA code has a
//! firing and a non-firing case, plus the deny-policy guarantee that a
//! rejected query posts zero crowd work.

use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::ops::sort::{HybridSort, RateSort};
use qurk::prelude::*;
use qurk::RecordingBackend;
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

const TASKS: &str = r#"
TASK isFemale(field) TYPE Filter:
    Prompt: "<img src='%s'> Is the person a woman?", tuple[field]
    YesText: "Yes"
    NoText: "No"
    Combiner: MajorityVote
TASK isSmiling(field) TYPE Filter:
    Prompt: "<img src='%s'> Smiling?", tuple[field]
    YesText: "Yes"
    NoText: "No"
    Combiner: MajorityVote
TASK samePerson(f1, f2) TYPE EquiJoin:
    SingularName: "person"
    PluralName: "people"
    LeftNormal: "<img src='%s'>", tuple1[f1]
    RightNormal: "<img src='%s'>", tuple2[f2]
    Combiner: MajorityVote
TASK gender(field) TYPE Generative:
    Prompt: "<img src='%s'> Gender?", tuple[field]
    Response: Radio("Gender", ["Male", "Female", UNKNOWN])
    Combiner: MajorityVote
TASK byHeight(field) TYPE Rank:
    SingularName: "person"
    PluralName: "people"
    OrderDimensionName: "height"
    LeastName: "shortest"
    MostName: "tallest"
    Html: "<img src='%s'>", tuple[field]
"#;

/// An n-person world with `people` and `photos` tables.
fn world(n: usize, seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    gt.define_dimension("height", DimensionParams::crisp(0.02));
    gt.define_feature("gender", &["Male", "Female"]);
    let people = gt.new_items(n);
    let photos = gt.new_items(n);
    for i in 0..n {
        let female = i % 2 == 0;
        for &it in &[people[i], photos[i]] {
            gt.set_entity(it, EntityId(i as u64));
            for pred in ["isFemale", "isSmiling"] {
                gt.set_predicate(
                    it,
                    pred,
                    PredicateTruth {
                        value: female,
                        error_rate: 0.03,
                    },
                );
            }
            gt.set_feature_simple(it, "gender", usize::from(female), 0.02);
        }
        gt.set_score(people[i], "height", i as f64);
    }
    let mut ppl = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    let mut ph = Relation::new(Schema::new(&[
        ("pid", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for i in 0..n {
        ppl.push(vec![Value::Int(i as i64), Value::Item(people[i])])
            .unwrap();
        ph.push(vec![Value::Int(i as i64), Value::Item(photos[i])])
            .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register_table("people", ppl);
    catalog.register_table("photos", ph);
    catalog.define_tasks(TASKS).unwrap();
    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);
    (catalog, market)
}

fn codes(diags: &[Diagnostic]) -> Vec<Code> {
    diags.iter().map(|d| d.code).collect()
}

// ------------------------------------------------------------- QA001

#[test]
fn qa001_fires_on_unfiltered_join_past_ceiling() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let mut config = session.config().clone();
    config.lint.join_hit_ceiling = 10.0;
    let diags = session
        .query("SELECT p.id FROM people p JOIN photos ph ON samePerson(p.img, ph.img)")
        .config(config)
        .check()
        .unwrap();
    let d = diags
        .iter()
        .find(|d| d.code == Code::QA001)
        .expect("QA001 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert!(
        d.message.contains("unfiltered cross join 'samePerson'")
            && d.message.contains("~144 candidate pairs"),
        "{}",
        d.message
    );
    assert!(d.span.is_some(), "join span resolved");
}

#[test]
fn qa001_escalates_to_error_against_budget() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p JOIN photos ph ON samePerson(p.img, ph.img)")
        .budget_dollars(1.0)
        .check()
        .unwrap();
    let d = diags
        .iter()
        .find(|d| d.code == Code::QA001)
        .expect("QA001 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("exceeds the query budget"),
        "{}",
        d.message
    );
}

#[test]
fn qa001_silent_with_possibly_prefilter() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let mut config = session.config().clone();
    config.lint.join_hit_ceiling = 10.0;
    let diags = session
        .query(
            "SELECT p.id FROM people p JOIN photos ph ON samePerson(p.img, ph.img) \
             AND POSSIBLY gender(p.img) = gender(ph.img)",
        )
        .config(config)
        .check()
        .unwrap();
    assert!(!codes(&diags).contains(&Code::QA001), "{diags:?}");
}

// ------------------------------------------------------------- QA002

#[test]
fn qa002_fires_on_contradictory_interval() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img) AND p.id > 5 AND p.id < 3")
        .check()
        .unwrap();
    let d = diags
        .iter()
        .find(|d| d.code == Code::QA002)
        .expect("QA002 fires");
    assert!(
        d.message.contains("contradictory") && d.message.contains("returns no rows"),
        "{}",
        d.message
    );
}

#[test]
fn qa002_fires_on_tautology() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE p.id = p.id AND isFemale(p.img)")
        .check()
        .unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::QA002 && d.message.contains("always true")),
        "{diags:?}"
    );
}

#[test]
fn qa002_silent_on_satisfiable_bounds() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img) AND p.id > 3 AND p.id < 5")
        .check()
        .unwrap();
    assert!(!codes(&diags).contains(&Code::QA002), "{diags:?}");
}

// ------------------------------------------------------------- QA003

#[test]
fn qa003_fires_on_pure_crowd_or_group() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE p.id < 6 OR isFemale(p.img)")
        .check()
        .unwrap();
    let d = diags
        .iter()
        .find(|d| d.code == Code::QA003)
        .expect("QA003 fires");
    assert!(
        d.message.contains("no machine-evaluable member") && d.message.contains("HITs"),
        "{}",
        d.message
    );
}

#[test]
fn qa003_silent_when_every_group_has_machine_member() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query(
            "SELECT p.id FROM people p \
             WHERE p.id < 6 AND isFemale(p.img) OR p.id >= 6 AND isSmiling(p.img)",
        )
        .check()
        .unwrap();
    assert!(!codes(&diags).contains(&Code::QA003), "{diags:?}");
}

// ------------------------------------------------------------- QA004

/// A catalog whose `people` table has `n` rows (heights only).
fn tall_world(n: usize) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    gt.define_dimension("height", DimensionParams::crisp(0.02));
    let people = gt.new_items(n);
    let mut ppl = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in people.iter().enumerate() {
        gt.set_score(it, "height", i as f64);
        ppl.push(vec![Value::Int(i as i64), Value::Item(it)])
            .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register_table("people", ppl);
    catalog.define_tasks(TASKS).unwrap();
    let market = Marketplace::new(&CrowdConfig::default().with_seed(9), gt);
    (catalog, market)
}

#[test]
fn qa004_fires_on_large_compare_sort() {
    let (catalog, market) = tall_world(300);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p ORDER BY byHeight(p.img)")
        .check()
        .unwrap();
    let d = diags
        .iter()
        .find(|d| d.code == Code::QA004)
        .expect("QA004 fires");
    assert!(
        d.message.contains("~300 items") && d.message.contains("covering-design bound (256)"),
        "{}",
        d.message
    );
}

#[test]
fn qa004_silent_below_bound_or_with_rate_sort() {
    let (catalog, market) = tall_world(300);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p ORDER BY byHeight(p.img)")
        .sort(SortMode::Rate(RateSort::default()))
        .check()
        .unwrap();
    assert!(!codes(&diags).contains(&Code::QA004), "{diags:?}");

    let (catalog, market) = tall_world(12);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p ORDER BY byHeight(p.img)")
        .check()
        .unwrap();
    assert!(!codes(&diags).contains(&Code::QA004), "{diags:?}");
}

// ------------------------------------------------------------- QA005

#[test]
fn qa005_fires_when_budget_below_floor() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img)")
        .budget_dollars(0.01)
        .check()
        .unwrap();
    let d = diags
        .iter()
        .find(|d| d.code == Code::QA005)
        .expect("QA005 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("below the cost-model floor") && d.message.contains("BudgetExceeded"),
        "{}",
        d.message
    );
}

#[test]
fn qa005_fires_on_zero_budget_with_crowd_work() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img)")
        .budget_dollars(0.0)
        .check()
        .unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::QA005 && d.message.contains("cannot admit any crowd work")),
        "{diags:?}"
    );
}

#[test]
fn qa005_silent_with_adequate_budget_or_machine_only_query() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img)")
        .budget_dollars(10.0)
        .check()
        .unwrap();
    assert!(!codes(&diags).contains(&Code::QA005), "{diags:?}");

    // Machine-only queries spend nothing: even a zero budget is fine.
    let diags = session
        .query("SELECT p.id FROM people p WHERE p.id < 6")
        .budget_dollars(0.0)
        .check()
        .unwrap();
    assert!(!codes(&diags).contains(&Code::QA005), "{diags:?}");
}

// ------------------------------------------------------------- QA006

#[test]
fn qa006_fires_on_smartbatch_pin_too_small_input() {
    let (catalog, market) = world(4, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p JOIN photos ph ON samePerson(p.img, ph.img)")
        .join(JoinOp {
            strategy: JoinStrategy::SmartBatch { rows: 5, cols: 5 },
            ..JoinOp::default()
        })
        .check()
        .unwrap();
    let d = diags
        .iter()
        .find(|d| d.code == Code::QA006)
        .expect("QA006 fires");
    assert!(
        d.message.contains("pinned SmartBatch 5x5") && d.message.contains("~16 candidate pairs"),
        "{}",
        d.message
    );
}

#[test]
fn qa006_fires_on_zero_iteration_hybrid_pin() {
    let (catalog, market) = tall_world(12);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p ORDER BY byHeight(p.img)")
        .sort(SortMode::Hybrid(HybridSort::default(), 0))
        .check()
        .unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::QA006 && d.message.contains("zero comparison budget")),
        "{diags:?}"
    );
}

#[test]
fn qa006_silent_when_pin_fits_input() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p JOIN photos ph ON samePerson(p.img, ph.img)")
        .join(JoinOp {
            strategy: JoinStrategy::SmartBatch { rows: 5, cols: 5 },
            ..JoinOp::default()
        })
        .check()
        .unwrap();
    assert!(!codes(&diags).contains(&Code::QA006), "{diags:?}");
}

// ------------------------------------------------------------- QA007

#[test]
fn qa007_fires_on_duplicate_crowd_conjunct() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img) AND isFemale(p.img)")
        .check()
        .unwrap();
    let d = diags
        .iter()
        .find(|d| d.code == Code::QA007)
        .expect("QA007 fires");
    assert!(
        d.message.contains("duplicate crowd filter isFemale(..)"),
        "{}",
        d.message
    );
    // The span points at the second occurrence.
    let span = d.span.expect("span resolved");
    assert!(span.column > 40, "span {span:?} should be the repeat");
}

#[test]
fn qa007_fires_on_shadowed_bound() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE p.id < 5 AND p.id < 8 AND isFemale(p.img)")
        .check()
        .unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::QA007 && d.message.contains("shadowed")),
        "{diags:?}"
    );
}

#[test]
fn qa007_silent_on_clean_query() {
    let (catalog, market) = world(12, 1);
    let mut session = Session::new(&catalog, market);
    let diags = session
        .query("SELECT p.id FROM people p WHERE p.id < 6 AND isFemale(p.img)")
        .check()
        .unwrap();
    assert!(!codes(&diags).contains(&Code::QA007), "{diags:?}");
}

// ----------------------------------------------------- policy plumbing

#[test]
fn deny_policy_rejects_before_any_post() {
    let (catalog, market) = world(12, 2);
    let mut session = Session::new(&catalog, RecordingBackend::new(market));
    let err = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img)")
        .lint(LintPolicy::Deny)
        .budget_dollars(0.01)
        .run()
        .unwrap_err();
    let QurkError::Rejected { diagnostics } = &err else {
        panic!("expected Rejected, got {err}");
    };
    assert!(diagnostics.iter().any(|d| d.code == Code::QA005));
    assert!(err.to_string().contains("rejected by pre-flight analysis"));
    // Nothing reached the marketplace: no HITs, no recorded trace.
    assert_eq!(session.backend().hits_posted(), 0);
    assert!(session.backend().inner().inner().trace().is_empty());
}

#[test]
fn deny_policy_passes_clean_queries_and_warn_reports() {
    let (catalog, market) = world(12, 3);
    let mut session = Session::new(&catalog, market);
    // Warn-level findings do not reject under deny…
    let report = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img) AND isFemale(p.img)")
        .lint(LintPolicy::Deny)
        .report()
        .unwrap();
    assert!(report.diagnostics.iter().any(|d| d.code == Code::QA007));
    // …and flow into the report + explain_full output.
    assert!(report.explain_full().contains("QA007 [warn]"));
}

#[test]
fn allow_policy_skips_analysis() {
    let (catalog, market) = world(12, 4);
    let mut session = Session::new(&catalog, market);
    let report = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img) AND isFemale(p.img)")
        .lint(LintPolicy::Allow)
        .report()
        .unwrap();
    assert!(report.diagnostics.is_empty());
}

#[test]
fn explain_shows_diagnostics_block() {
    let (catalog, market) = world(12, 5);
    let mut session = Session::new(&catalog, market);
    let text = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img) AND isFemale(p.img)")
        .explain()
        .unwrap();
    assert!(text.contains("diagnostics:\n"), "{text}");
    assert!(text.contains("QA007 [warn]"), "{text}");

    let clean = session
        .query("SELECT p.id FROM people p WHERE isFemale(p.img)")
        .explain()
        .unwrap();
    assert!(clean.contains("diagnostics: none"), "{clean}");
}

#[test]
fn parse_error_renders_caret_snippet() {
    let (catalog, market) = world(4, 6);
    let mut session = Session::new(&catalog, market);
    let err = session.run("SELECT p.id FRM people p").unwrap_err();
    let text = err.to_string();
    assert!(text.contains("parse error at 1:"), "{text}");
    assert!(text.contains("SELECT p.id FRM people p"), "{text}");
    // Caret on its own line, under the offending column.
    let caret_line = text.lines().last().unwrap();
    assert!(caret_line.trim_end().ends_with('^'), "{text}");
}
