//! Property test: the cost-based planner and the as-written planner
//! produce result-equivalent output on `ReplayBackend` traces.
//!
//! Strategy: record a trace that covers every single-tuple filter spec
//! (and every combined permutation) the two planners could possibly
//! post, then replay randomly generated filter queries through both
//! modes. Because the trace answers each (predicate, item) question
//! deterministically, any legal reordering / combining / machine
//! pushdown the optimizer performs must leave the result relation
//! unchanged — if the cost-based plan ever posts a spec the as-written
//! plan couldn't have answered per-item, the replay times out and the
//! test fails loudly.

use proptest::prelude::*;

use qurk::ops::filter::FilterOp;
use qurk::prelude::*;
use qurk::{RecordingBackend, ReplayTrace};
use qurk_crowd::truth::PredicateTruth;
use qurk_crowd::{CrowdConfig, GroundTruth, ItemId, Marketplace};

const N_ITEMS: usize = 8;
const PREDICATES: [&str; 3] = ["pa", "pb", "pc"];

fn truth_value(pred: &str, i: usize) -> bool {
    match pred {
        "pa" => i.is_multiple_of(2),
        "pb" => i < 5,
        "pc" => i.is_multiple_of(3),
        _ => unreachable!(),
    }
}

fn build_catalog(items: &[ItemId]) -> Catalog {
    let mut catalog = Catalog::new();
    let mut rel = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in items.iter().enumerate() {
        rel.push(vec![Value::Int(i as i64), Value::Item(it)])
            .unwrap();
    }
    catalog.register_table("t", rel);
    catalog
        .define_tasks(
            r#"TASK pa(field) TYPE Filter:
                Prompt: "%s a?", tuple[field]
               TASK pb(field) TYPE Filter:
                Prompt: "%s b?", tuple[field]
               TASK pc(field) TYPE Filter:
                Prompt: "%s c?", tuple[field]
            "#,
        )
        .unwrap();
    catalog
}

/// Record every spec shape the planners can post: each predicate on
/// each item alone (serial / OR-group evaluation at batch 1) and every
/// ordered combination of ≥2 predicates per item (§2.6 combining).
fn record_full_trace() -> (ReplayTrace, Vec<ItemId>) {
    let mut gt = GroundTruth::new();
    let items = gt.new_items(N_ITEMS);
    for (i, &it) in items.iter().enumerate() {
        for pred in PREDICATES {
            gt.set_predicate(
                it,
                pred,
                PredicateTruth {
                    value: truth_value(pred, i),
                    error_rate: 0.0, // deterministic answers
                },
            );
        }
    }
    let market = Marketplace::new(&CrowdConfig::default().with_seed(0xE0).honest(), gt);
    let mut rec = RecordingBackend::new(market);
    let op = FilterOp {
        batch_size: 1,
        ..Default::default()
    };
    // Singles.
    for pred in PREDICATES {
        op.run(&mut rec, pred, &items).unwrap();
    }
    // Ordered pairs and triples (combined-interface specs are
    // order-sensitive).
    let perms: Vec<Vec<&str>> = ordered_subsets(&PREDICATES);
    for perm in perms {
        if perm.len() >= 2 {
            op.run_combined(&mut rec, &perm, &items).unwrap();
        }
    }
    (rec.into_trace(), items)
}

/// All ordered subsets of size ≥ 2.
fn ordered_subsets<'a>(preds: &[&'a str]) -> Vec<Vec<&'a str>> {
    let mut out = Vec::new();
    let n = preds.len();
    for a in 0..n {
        for b in 0..n {
            if b != a {
                out.push(vec![preds[a], preds[b]]);
                for c in 0..n {
                    if c != a && c != b {
                        out.push(vec![preds[a], preds[b], preds[c]]);
                    }
                }
            }
        }
    }
    out
}

/// Build the WHERE clause for one generated query.
fn where_clause(
    conjuncts: &[&str],
    machine_k: usize,
    machine_pos: usize,
    or_group: Option<&str>,
) -> String {
    let mut parts: Vec<String> = conjuncts.iter().map(|p| format!("{p}(t.img)")).collect();
    // Machine predicate spliced at an arbitrary written position.
    parts.insert(machine_pos.min(parts.len()), format!("t.id < {machine_k}"));
    let mut clause = parts.join(" AND ");
    if let Some(op) = or_group {
        clause.push_str(&format!(" OR {op}(t.img) AND t.id >= {machine_k}"));
    }
    clause
}

fn run_mode(
    trace: &ReplayTrace,
    catalog: &Catalog,
    sql: &str,
    mode: OptimizeMode,
    stats: StatisticsStore,
) -> Relation {
    let backend = ReplayBackend::from_trace(trace.clone());
    let mut config = ExecConfig::default();
    config.filter.batch_size = 1;
    config.optimize = mode;
    let mut session = Session::builder()
        .catalog(catalog)
        .backend(backend)
        .config(config)
        .statistics(stats)
        .build();
    session
        .run(sql)
        .unwrap_or_else(|e| panic!("{mode:?} failed on {sql}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random conjunctions (with a machine predicate at a random
    /// written position, optionally an OR group) produce identical
    /// results under AsWritten and CostBased with arbitrary learned
    /// selectivities.
    #[test]
    fn cost_based_and_as_written_agree_on_replay(
        subset_idx in 0usize..6,
        machine_k in 0usize..9,
        machine_pos in 0usize..4,
        with_or in any::<bool>(),
        or_pred_idx in 0usize..3,
        sel_a in 0.0f64..1.0,
        sel_b in 0.0f64..1.0,
        sel_c in 0.0f64..1.0,
        seen in 1u64..200,
    ) {
        let (trace, items) = trace_and_items();
        let catalog = build_catalog(&items);

        // Conjunct subsets in varying order.
        let subsets: [&[&str]; 6] = [
            &["pa"], &["pb", "pa"], &["pa", "pc"],
            &["pc", "pb", "pa"], &["pa", "pb", "pc"], &["pb", "pc"],
        ];
        let conjuncts = subsets[subset_idx];
        let or_group = with_or.then(|| PREDICATES[or_pred_idx]);
        let sql = format!(
            "SELECT id FROM t WHERE {}",
            where_clause(conjuncts, machine_k, machine_pos, or_group)
        );

        // Arbitrary learned evidence: the optimizer may reorder and
        // combine however these numbers tell it to.
        let mut stats = StatisticsStore::new();
        for (pred, sel) in PREDICATES.iter().zip([sel_a, sel_b, sel_c]) {
            let passed = (sel * seen as f64) as usize;
            stats.observe_filter(pred, seen as usize, passed.min(seen as usize));
        }

        let as_written = run_mode(&trace, &catalog, &sql, OptimizeMode::AsWritten,
                                  StatisticsStore::new());
        let cost_based = run_mode(&trace, &catalog, &sql, OptimizeMode::CostBased, stats);
        prop_assert_eq!(&as_written, &cost_based, "query: {}", sql);

        // And both agree with the ground truth the deterministic
        // trace encodes.
        let expected: Vec<i64> = (0..N_ITEMS)
            .filter(|&i| {
                let conj = conjuncts.iter().all(|p| truth_value(p, i)) && i < machine_k;
                let disj = or_group
                    .map(|p| truth_value(p, i) && i >= machine_k)
                    .unwrap_or(false);
                conj || disj
            })
            .map(|i| i as i64)
            .collect();
        let got: Vec<i64> = as_written
            .rows()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        prop_assert_eq!(got, expected, "query: {}", sql);
    }
}

/// The trace is deterministic and expensive enough to build once.
fn trace_and_items() -> (ReplayTrace, Vec<ItemId>) {
    use std::sync::OnceLock;
    static CACHE: OnceLock<(ReplayTrace, Vec<ItemId>)> = OnceLock::new();
    CACHE.get_or_init(record_full_trace).clone()
}
