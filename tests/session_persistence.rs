//! `Session::persist_to`: a single-tenant session journaling to a
//! durable store replays its paid work for free after a restart.

use qurk::backend::ReplayBackend;
use qurk::{Catalog, DurableStore, Relation, ReplayTrace, Schema, Session, Value, ValueType};
use qurk_crowd::truth::PredicateTruth;
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

const FILTER_SQL: &str = "SELECT p.id FROM people AS p WHERE isTall(p.img)";

fn world(seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    let items = gt.new_items(8);
    for (i, &it) in items.iter().enumerate() {
        gt.set_predicate(
            it,
            "isTall",
            PredicateTruth {
                value: i >= 4,
                error_rate: 0.0,
            },
        );
        gt.set_entity(it, EntityId(i as u64));
    }
    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);

    let mut catalog = Catalog::new();
    let mut people = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in items.iter().enumerate() {
        people
            .push(vec![Value::Int(i as i64), Value::Item(it)])
            .expect("people row matches schema");
    }
    catalog.register_table("people", people);
    catalog
        .define_tasks(
            r#"TASK isTall(field) TYPE Filter:
                Prompt: "<img src='%s'> Tall?", tuple[field]
            "#,
        )
        .expect("task definitions parse");
    (catalog, market)
}

fn store_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "qurk-session-persist-{}-{tag}.qwal",
        std::process::id()
    ))
}

#[test]
fn persisted_session_replays_paid_work_after_restart() {
    let path = store_path("roundtrip");
    let _ = std::fs::remove_file(&path);

    // First process: pay for the filter on a live marketplace.
    let (catalog, market) = world(21);
    let (first_relation, first_hits) = {
        let mut session = Session::builder()
            .catalog(&catalog)
            .backend(market)
            .persist_to(&path)
            .expect("store opens")
            .build();
        let report = session
            .query(FILTER_SQL)
            .report()
            .expect("live run succeeds");
        assert!(report.hits_posted > 0, "the first run pays the crowd");
        (report.relation, report.hits_posted)
    }; // session dropped — "process exit"

    // Second process: no crowd at all (an empty replay backend). The
    // recovered cache must answer everything.
    let mut session = Session::builder()
        .catalog(&catalog)
        .backend(ReplayBackend::from_trace(ReplayTrace::default()))
        .persist_to(&path)
        .expect("store reopens")
        .build();
    assert!(
        !session.statistics().is_empty(),
        "recovered statistics seed the new session"
    );
    let report = session
        .query(FILTER_SQL)
        .report()
        .expect("cache-served run");
    assert_eq!(report.hits_posted, 0, "paid work must not be re-posted");
    assert_eq!(report.relation, first_relation, "byte-identical result");
    assert!(first_hits > 0);
    let (cache_hits, cache_misses) = session.cache_stats();
    assert!(cache_hits > 0);
    assert_eq!(cache_misses, 0);

    // The store handle is reachable for inspection.
    let store = session.store().expect("store attached").clone();
    assert!(!store.cache_keys().is_empty());

    let _ = std::fs::remove_file(&path);
}

/// A failed query in a plain session releases its in-flight dedup
/// slots (the single-owner variant of the service-level fix).
#[test]
fn failed_session_query_releases_pending_slots() {
    let (catalog, _market) = world(22);
    let mut session = Session::new(&catalog, ReplayBackend::from_trace(ReplayTrace::default()));
    let err = session.run(FILTER_SQL);
    assert!(err.is_err(), "unanswerable query must fail");
    assert_eq!(
        session.backend().inner().pending_len(),
        0,
        "failed query leaked in-flight dedup slots"
    );
}

/// `persist_to` surfaces a corrupt store as an error instead of
/// silently starting fresh.
#[test]
fn persist_to_rejects_a_corrupt_header() {
    let path = store_path("corrupt");
    std::fs::write(&path, b"NOTAQWALFILE____").expect("write corrupt file");
    let (catalog, market) = world(23);
    let result = Session::builder()
        .catalog(&catalog)
        .backend(market)
        .persist_to(&path);
    assert!(result.is_err(), "corrupt magic must refuse to open");
    let _ = std::fs::remove_file(&path);
    // DurableStore::open agrees (same code path).
    assert!(DurableStore::open(std::env::temp_dir().join("qurk-fresh.qwal")).is_ok());
    let _ = std::fs::remove_file(std::env::temp_dir().join("qurk-fresh.qwal"));
}
