//! Property test for the analyzer's central guarantee: a query that
//! passes `check()` under the `deny` policy never fails at runtime
//! with the error class the analyzer guards — in particular QA005 vs
//! [`QurkError::BudgetExceeded`].
//!
//! Soundness rests on the cost model over-estimating with an empty
//! statistics store (unknown selectivities default to 1.0, so every
//! estimate is an upper bound on actual spend); each proptest case
//! therefore uses a *fresh* session, never one with learned stats.

use proptest::prelude::*;

use qurk::prelude::*;
use qurk_crowd::truth::PredicateTruth;
use qurk_crowd::{CrowdConfig, GroundTruth, ItemId, Marketplace};

const N_ITEMS: usize = 8;
const PREDICATES: [&str; 3] = ["pa", "pb", "pc"];

fn truth_value(pred: &str, i: usize) -> bool {
    match pred {
        "pa" => i.is_multiple_of(2),
        "pb" => i < 5,
        "pc" => i.is_multiple_of(3),
        _ => unreachable!(),
    }
}

fn build_world(seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    let items: Vec<ItemId> = gt.new_items(N_ITEMS);
    for (i, &it) in items.iter().enumerate() {
        for pred in PREDICATES {
            gt.set_predicate(
                it,
                pred,
                PredicateTruth {
                    value: truth_value(pred, i),
                    error_rate: 0.0,
                },
            );
        }
    }
    let mut catalog = Catalog::new();
    let mut rel = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in items.iter().enumerate() {
        rel.push(vec![Value::Int(i as i64), Value::Item(it)])
            .unwrap();
    }
    catalog.register_table("t", rel);
    catalog
        .define_tasks(
            r#"TASK pa(field) TYPE Filter:
                Prompt: "%s a?", tuple[field]
               TASK pb(field) TYPE Filter:
                Prompt: "%s b?", tuple[field]
               TASK pc(field) TYPE Filter:
                Prompt: "%s c?", tuple[field]
            "#,
        )
        .unwrap();
    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed).honest(), gt);
    (catalog, market)
}

fn build_sql(conjunct_mask: u8, machine_k: usize, or_pred: Option<&str>) -> String {
    let mut parts: Vec<String> = PREDICATES
        .iter()
        .enumerate()
        .filter(|(i, _)| conjunct_mask & (1 << i) != 0)
        .map(|(_, p)| format!("{p}(t.img)"))
        .collect();
    parts.push(format!("t.id < {machine_k}"));
    let mut clause = parts.join(" AND ");
    if let Some(p) = or_pred {
        clause.push_str(&format!(" OR {p}(t.img) AND t.id >= {machine_k}"));
    }
    format!("SELECT id FROM t WHERE {clause}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accepted under deny ⇒ no BudgetExceeded (and no Rejected) at
    /// runtime; rejected with a QA005 error ⇒ running without the
    /// analyzer would indeed have hit the budget gate.
    #[test]
    fn deny_accepted_queries_never_exhaust_budget(
        conjunct_mask in 0u8..8,
        machine_k in 0usize..9,
        with_or in any::<bool>(),
        or_pred_idx in 0usize..3,
        budget_cents in 0u32..200,
        seed in 1u64..500,
    ) {
        let sql = build_sql(
            conjunct_mask,
            machine_k,
            with_or.then(|| PREDICATES[or_pred_idx]),
        );
        let budget = f64::from(budget_cents) / 100.0;

        // Fresh session per case: the upper-bound argument only holds
        // for an empty statistics store.
        let (catalog, market) = build_world(seed);
        let mut session = Session::new(&catalog, market);
        let diags = session.query(&sql).budget_dollars(budget).check().unwrap();
        let accepted = !diags.iter().any(|d| d.is_error());

        let result = session
            .query(&sql)
            .lint(LintPolicy::Deny)
            .budget_dollars(budget)
            .run();
        if accepted {
            match &result {
                Err(QurkError::BudgetExceeded { .. }) => prop_assert!(
                    false,
                    "check() accepted {sql} at ${budget:.2} but runtime hit the budget gate"
                ),
                Err(QurkError::Rejected { .. }) => prop_assert!(
                    false,
                    "check() accepted {sql} but deny rejected it: inconsistent analyzer"
                ),
                _ => {}
            }
        } else {
            // Rejection is one-sided by design: the floor is an upper
            // bound (selectivity 1.0, no cache credit), so a rejected
            // query might have squeaked through — but deny must still
            // reject it deterministically, before any post.
            prop_assert!(
                matches!(result, Err(QurkError::Rejected { .. })),
                "error diagnostics must reject under deny ({sql}): {result:?}"
            );
        }
    }
}
