//! Per-query configuration isolation: `QueryBuilder` overrides must
//! apply to exactly one query and never leak into subsequent queries
//! on the same `Session` — the bug class the old shared-`ExecConfig`
//! `Executor` invited (`ex.config.sort = ...` stuck until someone
//! reset it).

use qurk::ops::filter::FilterOp;
use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::ops::sort::RateSort;
use qurk::prelude::*;
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

fn world(seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    gt.define_dimension("d", DimensionParams::crisp(0.02));
    let n = 10;
    let items = gt.new_items(n);
    let photos = gt.new_items(n);
    for i in 0..n {
        for &it in &[items[i], photos[i]] {
            gt.set_entity(it, EntityId(i as u64));
        }
        gt.set_score(items[i], "d", i as f64);
        gt.set_predicate(
            items[i],
            "a",
            PredicateTruth {
                value: i % 2 == 0,
                error_rate: 0.03,
            },
        );
        gt.set_predicate(
            items[i],
            "b",
            PredicateTruth {
                value: i < 5,
                error_rate: 0.03,
            },
        );
    }
    let mut t = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    let mut p = Relation::new(Schema::new(&[
        ("pid", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for i in 0..n {
        t.push(vec![Value::Int(i as i64), Value::Item(items[i])])
            .unwrap();
        p.push(vec![Value::Int(i as i64), Value::Item(photos[i])])
            .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register_table("t", t);
    catalog.register_table("p", p);
    catalog
        .define_tasks(
            r#"TASK a(field) TYPE Filter:
                Prompt: "%s?", tuple[field]
               TASK b(field) TYPE Filter:
                Prompt: "%s?", tuple[field]
               TASK j(x, y) TYPE EquiJoin:
                Combiner: MajorityVote
               TASK byD(field) TYPE Rank:
                OrderDimensionName: "d"
            "#,
        )
        .unwrap();
    (
        catalog,
        Marketplace::new(&CrowdConfig::default().with_seed(seed), gt),
    )
}

/// Fresh worlds per query so HIT counts are comparable; the only
/// variable is whether an override from query 1 leaked into query 2.
#[test]
fn combine_filters_override_does_not_leak() {
    // Baseline: what a default (serial) conjunctive filter costs.
    let (catalog, market) = world(40);
    let serial_hits = Session::new(&catalog, market)
        .query("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
        .report()
        .unwrap()
        .hits_posted;

    // One session: combined query first, then a default query on a
    // *different* predicate pair ordering (same shape, fresh items are
    // not available, so compare HIT counts against the baseline).
    let (catalog, market) = world(40);
    let mut session = Session::new(&catalog, market);
    let combined = session
        .query("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
        .combine_filters(true)
        .report()
        .unwrap();
    assert!(
        combined.hits_posted < serial_hits,
        "combining must cut HITs: {} vs {serial_hits}",
        combined.hits_posted
    );
    // The session default is still serial combining=false.
    assert!(!session.config().combine_conjunct_filters);

    // A fresh world + session pair proves behavioural (not just
    // config-field) isolation: running the same SQL *after* an
    // override-laden query costs the serial amount again.
    let (catalog, market) = world(40);
    let mut session = Session::new(&catalog, market);
    let _ = session
        .query("SELECT id FROM t WHERE a(t.img) AND b(t.img) AND id >= 0")
        .combine_filters(true)
        .filter(FilterOp {
            batch_size: 2,
            ..Default::default()
        })
        .run()
        .unwrap();
    let (catalog2, market2) = world(41);
    let mut session2 = Session::new(&catalog2, market2);
    let after = session2
        .query("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
        .report()
        .unwrap();
    let (catalog3, market3) = world(41);
    let baseline = Session::new(&catalog3, market3)
        .query("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
        .report()
        .unwrap();
    assert_eq!(after.hits_posted, baseline.hits_posted);
}

#[test]
fn sort_mode_override_does_not_leak() {
    let (catalog, market) = world(42);
    let mut session = Session::new(&catalog, market);

    // Query 1 overrides the sort to Rate (O(N) HITs).
    let rate = session
        .query("SELECT id FROM t ORDER BY byD(t.img)")
        .sort(SortMode::Rate(RateSort::default()))
        .report()
        .unwrap();
    // Query 2 uses the session default (Compare, O(N²) HITs). If the
    // Rate override leaked, its HIT count would match query 1's
    // (everything else is cached — the Compare HITs are new work).
    let compare = session
        .query("SELECT id FROM t ORDER BY byD(t.img)")
        .report()
        .unwrap();
    assert!(
        compare.hits_posted > rate.hits_posted * 2,
        "default sort must be Compare again: compare={} rate={}",
        compare.hits_posted,
        rate.hits_posted
    );
    // And a third default query is pure cache (both modes seen).
    let third = session
        .query("SELECT id FROM t ORDER BY byD(t.img)")
        .report()
        .unwrap();
    assert_eq!(third.hits_posted, 0);
}

#[test]
fn join_and_assignment_overrides_do_not_leak() {
    let (catalog, market) = world(43);
    let mut session = Session::new(&catalog, market);

    // Query 1: Simple join (100 single-pair HITs) with 3 assignments.
    let simple = session
        .query("SELECT t.id FROM t JOIN p ON j(t.img, p.img)")
        .join(JoinOp {
            strategy: JoinStrategy::Simple,
            ..Default::default()
        })
        .assignments(3)
        .report()
        .unwrap();
    assert_eq!(simple.hits_posted, 100);
    assert_eq!(simple.assignments, 300);

    // Query 2, same SQL, session defaults: NaiveBatch(5) posts 20 new
    // HITs (different specs than the Simple run) at 5 assignments.
    let batched = session
        .query("SELECT t.id FROM t JOIN p ON j(t.img, p.img)")
        .report()
        .unwrap();
    assert_eq!(batched.hits_posted, 20);
    assert_eq!(batched.assignments, 100);
}

#[test]
fn budget_override_applies_to_one_query_only() {
    let (catalog, market) = world(44);
    let mut session = Session::new(&catalog, market);
    let err = session
        .query("SELECT id FROM t WHERE a(t.img)")
        .budget_dollars(0.0)
        .run();
    assert!(matches!(err, Err(QurkError::BudgetExceeded { .. })));
    // The next query has no budget and runs normally.
    let ok = session.run("SELECT id FROM t WHERE a(t.img)").unwrap();
    assert!(ok.len() >= 3);
    // Both queries were metered (the failed one spent nothing).
    assert_eq!(session.usage_history().len(), 2);
    assert_eq!(session.usage_history()[0].hits_posted, 0);
    assert!(session.usage_history()[1].hits_posted > 0);
}

#[test]
fn session_builder_defaults_apply_to_every_query() {
    // Builder-level defaults are the session-wide baseline...
    let (catalog, market) = world(45);
    let mut session = Session::builder()
        .catalog(&catalog)
        .backend(market)
        .combine_filters(true)
        .build();
    let combined = session
        .query("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
        .report()
        .unwrap();
    // ...and can still be overridden per query, back to serial.
    let (catalog2, market2) = world(45);
    let mut session2 = Session::builder()
        .catalog(&catalog2)
        .backend(market2)
        .combine_filters(true)
        .build();
    let serial = session2
        .query("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
        .combine_filters(false)
        .report()
        .unwrap();
    assert!(
        combined.hits_posted < serial.hits_posted,
        "combined={} serial={}",
        combined.hits_posted,
        serial.hits_posted
    );
}
