//! Integration tests for reproducibility: the entire pipeline —
//! dataset generation, marketplace event loop, operators, combiners —
//! is a pure function of the seed. This is what makes the experiment
//! harness's numbers citable.

use qurk::ops::join::{JoinOp, JoinStrategy};
use qurk::ops::sort::{HybridSort, RateSort};
use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};
use qurk_data::celebrity::{celebrity_dataset, CelebrityConfig};
use qurk_data::squares::{squares_dataset, AREA};

fn join_run(seed: u64) -> (Vec<(usize, usize)>, f64, u64) {
    let mut gt = GroundTruth::new();
    let ds = celebrity_dataset(&mut gt, &CelebrityConfig::default().with_celebrities(10));
    let mut market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);
    let out = JoinOp {
        strategy: JoinStrategy::NaiveBatch(5),
        ..Default::default()
    }
    .run(&mut market, &ds.celeb_items, &ds.photo_items, None)
    .unwrap();
    (
        out.matches,
        market.now().secs(),
        market.ledger.assignments_paid,
    )
}

#[test]
fn identical_seeds_identical_everything() {
    let (m1, t1, a1) = join_run(42);
    let (m2, t2, a2) = join_run(42);
    assert_eq!(m1, m2);
    assert_eq!(t1, t2);
    assert_eq!(a1, a2);
}

#[test]
fn different_seeds_different_timelines() {
    let (_, t1, _) = join_run(1);
    let (_, t2, _) = join_run(2);
    assert_ne!(t1, t2, "different crowds should take different time");
}

#[test]
fn sort_trajectories_are_reproducible() {
    let run = |seed: u64| {
        let mut gt = GroundTruth::new();
        let ds = squares_dataset(&mut gt, 20);
        let mut market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);
        let out = HybridSort::default()
            .run(&mut market, &ds.items, AREA, 10)
            .unwrap();
        out.trajectory
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn rating_scores_are_reproducible() {
    let run = |seed: u64| {
        let mut gt = GroundTruth::new();
        let ds = squares_dataset(&mut gt, 15);
        let mut market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);
        RateSort::default()
            .run(&mut market, &ds.items, AREA)
            .unwrap()
            .scores
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn dataset_generation_is_independent_of_market_seed() {
    let mut gt1 = GroundTruth::new();
    let a = celebrity_dataset(&mut gt1, &CelebrityConfig::default());
    let mut gt2 = GroundTruth::new();
    let b = celebrity_dataset(&mut gt2, &CelebrityConfig::default());
    assert_eq!(a.photo_owner, b.photo_owner);
    assert_eq!(
        a.celebrities.iter().map(|c| c.skin).collect::<Vec<_>>(),
        b.celebrities.iter().map(|c| c.skin).collect::<Vec<_>>()
    );
}
