//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmarking surface this workspace uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros — with a simple timing loop: a warm-up
//! iteration followed by `sample_size` timed iterations, reporting the
//! mean and min per-iteration wall-clock time. No statistics, plots,
//! or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs one benchmark's iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples);
    }

    fn report(&mut self, id: &str, samples: &[Duration]) {
        let _ = &self.criterion;
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {mean:?}, min {min:?} ({} samples)",
            self.name,
            samples.len()
        );
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring criterion's `Criterion` struct.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
