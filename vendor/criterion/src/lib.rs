//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmarking surface this workspace uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! `criterion_group!` / `criterion_main!` macros — with a simple timing
//! loop: `warm_up_iters` untimed calls (default 1) followed by
//! `sample_size` timed iterations, reporting mean, median, and min
//! per-iteration wall-clock time plus elements/sec when a throughput is
//! set. No statistics beyond that, no plots, no baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// How much work one benchmark iteration performs, for rate reporting
/// (mirrors criterion's `Throughput`; only elements are supported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// One iteration processes this many logical elements (rows, votes,
    /// pairs); reports add elements/sec computed from the median.
    Elements(u64),
}

/// Runs one benchmark's iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_iters: usize,
}

impl Bencher {
    /// Time `routine`: `warm_up_iters` untimed calls, then
    /// `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warm_up_iters {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// One benchmark's timing summary, also returned programmatically so
/// harnesses (the wall-clock suite) can consume numbers instead of
/// parsing stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSummary {
    pub mean: Duration,
    pub median: Duration,
    pub min: Duration,
    pub samples: usize,
}

impl SampleSummary {
    fn from_samples(samples: &[Duration]) -> Option<SampleSummary> {
        if samples.is_empty() {
            return None;
        }
        let total: Duration = samples.iter().sum();
        let mut sorted = samples.to_vec();
        sorted.sort();
        // Even count: lower-middle (medians stay actual observations).
        let median = sorted[(sorted.len() - 1) / 2];
        Some(SampleSummary {
            mean: total / samples.len() as u32,
            median,
            min: sorted[0],
            samples: samples.len(),
        })
    }

    /// Elements/sec at the median, given per-iteration work.
    pub fn elements_per_sec(&self, throughput: Throughput) -> f64 {
        let Throughput::Elements(n) = throughput;
        let secs = self.median.as_secs_f64();
        if secs > 0.0 {
            n as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_iters: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Number of untimed warm-up calls before sampling (default 1).
    /// Real criterion warms up for a time budget; a fixed iteration
    /// count keeps this stand-in deterministic.
    pub fn warm_up_iters(&mut self, n: usize) -> &mut Self {
        self.warm_up_iters = n;
        self
    }

    /// Declare per-iteration work so reports include elements/sec.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> Option<SampleSummary> {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_iters: self.warm_up_iters,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples)
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> Option<SampleSummary> {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_iters: self.warm_up_iters,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples)
    }

    fn report(&mut self, id: &str, samples: &[Duration]) -> Option<SampleSummary> {
        let _ = &self.criterion;
        let Some(summary) = SampleSummary::from_samples(samples) else {
            println!("{}/{id}: no samples", self.name);
            return None;
        };
        match self.throughput {
            Some(tp) => println!(
                "{}/{id}: mean {:?}, median {:?}, min {:?}, {:.0} elem/s ({} samples)",
                self.name,
                summary.mean,
                summary.median,
                summary.min,
                summary.elements_per_sec(tp),
                summary.samples
            ),
            None => println!(
                "{}/{id}: mean {:?}, median {:?}, min {:?} ({} samples)",
                self.name, summary.mean, summary.median, summary.min, summary.samples
            ),
        }
        Some(summary)
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring criterion's `Criterion` struct.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_iters: 1,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn warm_up_iters_are_untimed_but_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).warm_up_iters(5);
        let mut runs = 0usize;
        let summary = g
            .bench_function("f", |b| b.iter(|| runs += 1))
            .expect("samples were taken");
        // 5 warm-ups + 2 samples ran, but only 2 were timed.
        assert_eq!(runs, 7);
        assert_eq!(summary.samples, 2);
    }

    #[test]
    fn summary_median_is_an_observed_sample() {
        let samples = [
            Duration::from_micros(30),
            Duration::from_micros(10),
            Duration::from_micros(20),
            Duration::from_micros(40),
        ];
        let s = SampleSummary::from_samples(&samples).unwrap();
        // Even count: lower-middle of {10,20,30,40}.
        assert_eq!(s.median, Duration::from_micros(20));
        assert_eq!(s.min, Duration::from_micros(10));
        assert_eq!(s.mean, Duration::from_micros(25));
    }

    #[test]
    fn elements_per_sec_uses_median() {
        let s = SampleSummary {
            mean: Duration::from_millis(2),
            median: Duration::from_millis(1),
            min: Duration::from_micros(500),
            samples: 3,
        };
        let rate = s.elements_per_sec(Throughput::Elements(1000));
        assert!((rate - 1_000_000.0).abs() < 1e-6);
    }
}
