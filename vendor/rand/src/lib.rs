//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate provides exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator.
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion.
//! * [`Rng`] — the core `u64` source, object-safe.
//! * [`RngExt`] — `random::<T>()` / `random_range(..)` conveniences
//!   (blanket-implemented for every `Rng`).
//!
//! Streams are fully deterministic per seed, which the simulator's
//! reproducibility tests rely on. Statistical quality is that of
//! xoshiro256**, ample for the moment tests in `qurk-crowd`.

/// Core random source. Object-safe: only fixed-width output methods.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG via
/// [`RngExt::random`].
pub trait Standard: Sized {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for char {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Printable ASCII; enough for string strategies.
        (b' ' + (rng.next_u64() % 95) as u8) as char
    }
}

mod sealed_range {
    /// Ranges usable with [`super::RngExt::random_range`].
    pub trait SampleRange {
        type Output;
        fn sample<R: super::Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
    }
}
pub use sealed_range::SampleRange;

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `0..span` (`span > 0`) by rejection.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Convenience methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw of a [`Standard`] type (`f64` is `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from an integer or float range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Bernoulli draw.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (Blackman & Vigna), seeded
    /// by SplitMix64 expansion — the conventional pairing.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_decent_mean() {
        let mut r = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| r.random::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.random_range(3usize..=7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
            let w = r.random_range(0u32..5);
            assert!(w < 5);
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn works_through_dyn_and_mut_refs() {
        let mut r = StdRng::seed_from_u64(1);
        fn take_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let x = take_generic(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
