//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API used by this workspace:
//! the [`strategy::Strategy`] trait (ranges, tuples, regex-like string
//! patterns, `prop::collection::vec`, `prop::sample::select`,
//! `prop_map`/`prop_flat_map`), `any::<T>()`, the [`proptest!`] macro
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-case seed (fully deterministic, no persistence files) and
//! failures are **not shrunk** — the failing inputs are reported as
//! drawn. That is sufficient for the property tests in this repo.

pub use rand as __rng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Resample until `pred` accepts (bounded; panics with `reason`
        /// if no accepted value is found — no shrinking machinery here).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                reason,
            }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// `&str` patterns act as regex-subset string strategies. Supported
    /// grammar: atoms `.` (printable ASCII), `[...]` classes with `a-z`
    /// ranges and literal members, or a literal character; each atom may
    /// carry a `{m}` / `{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            // Parse one atom into its alphabet.
            let alphabet: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    (b' '..=b'~').map(|b| b as char).collect()
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed [ in pattern")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            assert!(lo <= hi, "bad class range in pattern");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional {m} / {m,n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                    None => {
                        let n: usize = body.parse().unwrap();
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let n = rng.random_range(lo..=hi);
            for _ in 0..n {
                out.push(alphabet[rng.random_range(0..alphabet.len())]);
            }
        }
        out
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.random()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.random()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> usize {
            rng.random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, sign-balanced, wide range.
            (rng.random::<f64>() - 0.5) * 2e12
        }
    }

    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }

    /// Uniformly select one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

pub mod test_runner {
    /// Error type for test-case bodies that `return Ok(())` early.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    /// Result alias for generated test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`cases` only; no fork/persistence).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The property-test macro. Each contained function runs its body for
/// `cases` iterations, drawing every `pat in strategy` binding from a
/// deterministic per-case RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg = $cfg;
            for __case in 0u64..(__cfg.cases as u64) {
                let mut __rng =
                    <$crate::__rng::rngs::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(
                        0x5DEE_CE66u64
                            .wrapping_add(__case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Bodies may `return Ok(())` early, as in real proptest.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    Ok(())
                })();
                __outcome.unwrap();
            }
        }
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&".{0,20}", &mut rng);
            assert!(t.len() <= 20);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 1usize..10, xs in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn flat_map_nests(m in (2usize..5).prop_flat_map(|k| {
            prop::collection::vec(prop::collection::vec(0u32..6, k..=k), 1..4)
        })) {
            let k = m[0].len();
            prop_assert!((2..5).contains(&k));
            prop_assert!(m.iter().all(|row| row.len() == k));
        }

        #[test]
        fn tuples_and_select(
            (a, b, c) in (0usize..3, 0usize..3, 0usize..3),
            word in prop::sample::select(vec!["x", "y"]),
        ) {
            prop_assert!(a < 3 && b < 3 && c < 3);
            prop_assert!(word == "x" || word == "y");
        }
    }
}
